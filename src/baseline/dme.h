// Deferred-Merge Embedding baseline (Chao et al. [1], Tsay [2]).
//
// The classical zero-skew clock tree construction the paper builds on
// (Sec 2.2): a bottom-up pass computes merge segments (Manhattan
// arcs) whose split point balances Elmore delays exactly via eq. 2.5,
//
//   x = ((t2 - t1) + alpha*l*(C2 + beta*l/2)) /
//       (alpha*l*(C1 + C2 + beta*l)),
//
// with wire snaking when x falls outside [0, 1]; a top-down pass then
// embeds the merge segments into concrete locations.
//
// Two variants are provided:
//  * unbuffered (the textbook algorithm) -- zero Elmore skew, but on
//    the paper's 10x-RC dies its slews are hopeless (that is Fig 1.1's
//    point and what the aggressive-insertion flow fixes);
//  * merge-node-only buffering (in merge_buffered.h) -- the [6][8][16]
//    policy used as comparison in Table 5.1.
#ifndef CTSIM_BASELINE_DME_H
#define CTSIM_BASELINE_DME_H

#include <vector>

#include "cts/clock_tree.h"
#include "cts/options.h"
#include "cts/synthesizer.h"
#include "geom/trr.h"

namespace ctsim::baseline {

/// Zero-skew merge point on a segment of length `l` between subtree
/// roots with delays t1/t2 and load caps c1/c2 (eq. 2.5). Returns the
/// split fraction x, unclamped; callers handle detours when x is
/// outside [0, 1].
double zero_skew_split(double t1, double t2, double c1, double c2, double l,
                       double alpha_res_per_um, double beta_cap_per_um);

/// Wire length solving alpha*L*(beta*L/2 + c_fast) = t_slow - t_fast
/// (the detour / snaking length when one subtree is too fast).
double detour_length(double delay_gap_ps, double c_fast_ff, double alpha_res_per_um,
                     double beta_cap_per_um);

struct DmeOptions {
    cts::SynthesisOptions topology{};  ///< matching/cost knobs reused
    unsigned rng_seed{1};
};

struct DmeResult {
    cts::ClockTree tree;
    int root{-1};
    double elmore_skew_ps{0.0};   ///< residual Elmore skew (should be ~0)
    double elmore_delay_ps{0.0};  ///< root-to-sink Elmore delay
    double wire_length_um{0.0};
};

/// Classic unbuffered DME flow: levelized greedy topology + exact
/// zero-skew merging + top-down embedding.
DmeResult dme_synthesize(const std::vector<cts::SinkSpec>& sinks, const tech::Technology& tech,
                         const DmeOptions& opt = {});

}  // namespace ctsim::baseline

#endif  // CTSIM_BASELINE_DME_H
