// Merge-node-only buffer insertion baseline (the [6][8][16] policy).
//
// The comparison flows in Table 5.1 integrate buffer insertion with
// clock tree construction but restrict candidate buffer locations to
// merge nodes (Fig 1.2(a)). This baseline reproduces that policy on
// top of the DME machinery: whenever the accumulated downstream
// capacitance after a merge exceeds what a buffer can drive within
// the slew target, a buffer is committed at the merge node. On the
// paper's 10x-RC dies the wires between merge nodes grow longer than
// any buffer can hold, which is exactly the failure mode motivating
// aggressive (anywhere-on-the-path) insertion.
#ifndef CTSIM_BASELINE_MERGE_BUFFERED_H
#define CTSIM_BASELINE_MERGE_BUFFERED_H

#include "baseline/dme.h"
#include "delaylib/delay_model.h"

namespace ctsim::baseline {

struct MergeBufferedOptions {
    cts::SynthesisOptions synthesis{};  ///< slew target, cost knobs
    unsigned rng_seed{1};
    /// Buffer type committed at merge nodes (-1 = largest).
    int buffer_type{-1};
};

struct MergeBufferedResult {
    cts::ClockTree tree;
    int root{-1};
    int buffer_count{0};
    double wire_length_um{0.0};
    double model_delay_ps{0.0};  ///< bottom-up balanced delay estimate
};

MergeBufferedResult merge_buffered_synthesize(const std::vector<cts::SinkSpec>& sinks,
                                              const delaylib::DelayModel& model,
                                              const MergeBufferedOptions& opt = {});

}  // namespace ctsim::baseline

#endif  // CTSIM_BASELINE_MERGE_BUFFERED_H
