#include "baseline/dme.h"

#include <cmath>
#include <random>
#include <stdexcept>

#include "cts/topology.h"

namespace ctsim::baseline {

double zero_skew_split(double t1, double t2, double c1, double c2, double l,
                       double alpha_res_per_um, double beta_cap_per_um) {
    const double a = alpha_res_per_um;
    const double b = beta_cap_per_um;
    const double denom = a * l * (c1 + c2 + b * l);
    if (denom <= 0.0) return 0.5;
    return ((t2 - t1) + a * l * (c2 + b * l / 2.0)) / denom;
}

double detour_length(double delay_gap_ps, double c_fast_ff, double alpha_res_per_um,
                     double beta_cap_per_um) {
    // alpha*L*(beta*L/2 + c) = gap  ->  (a b / 2) L^2 + a c L - gap = 0.
    const double a = alpha_res_per_um;
    const double b = beta_cap_per_um;
    if (delay_gap_ps <= 0.0) return 0.0;
    const double disc = a * a * c_fast_ff * c_fast_ff + 2.0 * a * b * delay_gap_ps;
    return (-a * c_fast_ff + std::sqrt(disc)) / (a * b);
}

namespace {

struct DmeNode {
    geom::Trr region;
    double t{0.0};    ///< zero-skew delay from this (future) node to sinks
    double cap{0.0};  ///< downstream capacitance
    int child_a{-1};
    int child_b{-1};
    double wire_a{0.0};
    double wire_b{0.0};
    int sink{-1};  ///< ClockTree sink id for leaves
};

}  // namespace

DmeResult dme_synthesize(const std::vector<cts::SinkSpec>& sinks, const tech::Technology& tech,
                         const DmeOptions& opt) {
    if (sinks.empty()) throw std::invalid_argument("dme: no sinks");
    const double a = tech.wire_res_kohm_per_um;  // [kOhm/um] -> ps units work out
    const double b = tech.wire_cap_ff_per_um;

    DmeResult out;
    std::vector<DmeNode> nodes;
    std::vector<int> roots;  // indices into `nodes`
    nodes.reserve(sinks.size() * 2);
    for (const cts::SinkSpec& s : sinks) {
        DmeNode n;
        n.region = geom::Trr::point(s.pos);
        n.cap = s.cap_ff;
        n.sink = out.tree.add_sink(s.pos, s.cap_ff, s.name);
        roots.push_back(static_cast<int>(nodes.size()));
        nodes.push_back(n);
    }

    std::mt19937 rng(opt.rng_seed);
    while (roots.size() > 1) {
        std::vector<cts::LevelNode> level;
        level.reserve(roots.size());
        for (int r : roots)
            level.push_back({r, nodes[r].region.center(), nodes[r].t});
        const cts::Pairing pairing = cts::select_pairs(level, opt.topology, rng);

        std::vector<int> next;
        for (auto [ia, ib] : pairing.pairs) {
            const DmeNode& n1 = nodes[ia];
            const DmeNode& n2 = nodes[ib];
            const double l = geom::Trr::distance(n1.region, n2.region);

            double l1 = 0.0, l2 = 0.0;
            if (l > 0.0) {
                const double x = zero_skew_split(n1.t, n2.t, n1.cap, n2.cap, l, a, b);
                if (x < 0.0) {
                    l1 = 0.0;
                    l2 = detour_length(n1.t - n2.t, n2.cap, a, b);
                } else if (x > 1.0) {
                    l2 = 0.0;
                    l1 = detour_length(n2.t - n1.t, n1.cap, a, b);
                } else {
                    l1 = x * l;
                    l2 = l - l1;
                }
            } else if (n1.t != n2.t) {
                // Coincident regions with unequal delays: pure snaking.
                if (n1.t < n2.t)
                    l1 = detour_length(n2.t - n1.t, n1.cap, a, b);
                else
                    l2 = detour_length(n1.t - n2.t, n2.cap, a, b);
            }

            const auto ms = geom::merge_segment(n1.region, l1, n2.region, l2);
            if (!ms.has_value())
                throw std::runtime_error("dme: empty merge segment (radii inconsistent)");

            DmeNode m;
            m.region = *ms;
            m.t = n1.t + a * l1 * (b * l1 / 2.0 + n1.cap);
            m.cap = n1.cap + n2.cap + b * (l1 + l2);
            m.child_a = ia;
            m.child_b = ib;
            m.wire_a = l1;
            m.wire_b = l2;
            next.push_back(static_cast<int>(nodes.size()));
            nodes.push_back(m);
        }
        if (pairing.seed >= 0) next.push_back(pairing.seed);
        roots = std::move(next);
    }

    // Top-down embedding: fix the root anywhere on its merge segment,
    // then place every child on its own segment as close to the parent
    // as possible; the recorded wire lengths (>= the resulting
    // distances) preserve the zero-skew balance via snaking.
    const int top = roots[0];
    struct Frame {
        int dme_node;
        int tree_parent;
        double wire;
        geom::Pt parent_pos;
    };
    std::vector<Frame> stack;
    const geom::Pt root_pos = nodes[top].region.center();
    int tree_root;
    if (nodes[top].sink >= 0) {
        tree_root = nodes[top].sink;
    } else {
        tree_root = out.tree.add_merge(root_pos);
        stack.push_back({nodes[top].child_a, tree_root, nodes[top].wire_a, root_pos});
        stack.push_back({nodes[top].child_b, tree_root, nodes[top].wire_b, root_pos});
    }
    while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        const DmeNode& n = nodes[f.dme_node];
        const geom::Pt pos = n.region.closest_point_to(f.parent_pos);
        int id;
        if (n.sink >= 0) {
            id = n.sink;
        } else {
            id = out.tree.add_merge(pos);
            stack.push_back({n.child_a, id, n.wire_a, pos});
            stack.push_back({n.child_b, id, n.wire_b, pos});
        }
        const double dist = geom::manhattan(pos, f.parent_pos);
        out.tree.connect(f.tree_parent, id, std::max(f.wire, dist));
    }

    out.root = tree_root;
    out.elmore_delay_ps = nodes[top].t;
    out.wire_length_um = out.tree.wire_length_below(tree_root);
    out.elmore_skew_ps = 0.0;  // by construction; tests verify via moments
    return out;
}

}  // namespace ctsim::baseline
