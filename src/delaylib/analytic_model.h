// Closed-form (moment-based) delay model.
//
// Chapter 3's "insufficient" baselines packaged behind the DelayModel
// interface: Elmore/lognormal delays with the PERI ramp extension for
// wires, and a first-order switching-resistance model for buffers.
// It is orders of magnitude cheaper than the fitted library and has
// no characterization step, so the CTS unit tests and the unbuffered
// baselines run on it; the reproduction experiments use FittedLibrary.
#ifndef CTSIM_DELAYLIB_ANALYTIC_MODEL_H
#define CTSIM_DELAYLIB_ANALYTIC_MODEL_H

#include "delaylib/delay_model.h"

namespace ctsim::delaylib {

class AnalyticModel final : public DelayModel {
  public:
    AnalyticModel(const tech::Technology& tech, const tech::BufferLibrary& lib);

    double buffer_delay(int d, int l, double slew_in, double len) const override;
    double wire_delay(int d, int l, double slew_in, double len) const override;
    double wire_slew(int d, int l, double slew_in, double len) const override;
    BranchTiming branch(int d, int l_left, int l_right, double slew_in, double stem,
                        double left, double right) const override;

  private:
    struct WireEst {
        double delay{0.0};
        double step_slew{0.0};
    };
    /// Lognormal delay/step-slew at the end of a wire of length `len`
    /// behind driver resistance `rdrv`, loaded by `cload` at the end.
    WireEst wire_estimate(double rdrv, double len, double cload) const;

    std::vector<double> out_res_;   // per buffer type [kOhm]
    std::vector<double> in_cap_;    // per buffer type [fF]
    /// Intrinsic-delay coefficients: delay = isect + slew_coef*slew
    /// + 0.69*Rout*Cload; calibrated once against the transistor model.
    double slew_coef_{0.2};
    double isect_{2.0};
};

}  // namespace ctsim::delaylib

#endif  // CTSIM_DELAYLIB_ANALYTIC_MODEL_H
