#include "delaylib/analytic_model.h"

#include <algorithm>
#include <cmath>

#include "circuit/rc_tree.h"
#include "moments/closed_form.h"
#include "moments/rc_moments.h"

namespace ctsim::delaylib {

AnalyticModel::AnalyticModel(const tech::Technology& tech, const tech::BufferLibrary& lib)
    : DelayModel(tech, lib) {
    out_res_.reserve(lib.count());
    in_cap_.reserve(lib.count());
    for (int t = 0; t < lib.count(); ++t) {
        out_res_.push_back(lib.type(t).output_res_kohm(tech));
        in_cap_.push_back(lib.type(t).input_cap_ff(tech));
    }
}

AnalyticModel::WireEst AnalyticModel::wire_estimate(double rdrv, double len,
                                                    double cload) const {
    const tech::Technology& tk = technology();
    if (len <= 0.0) {
        // Lumped: single pole tau = rdrv * cload.
        const double tau = rdrv * cload;
        return {tau * 0.6931, tau * std::log(9.0)};
    }
    circuit::RcTree t;
    const int segs = std::max(2, static_cast<int>(len / 100.0));
    const int end = t.add_wire(0, len, tk.wire_res_kohm_per_um, tk.wire_cap_ff_per_um, segs);
    t.add_cap(end, cload);
    const auto m = moments::moments(t, rdrv);
    const moments::StepResponse s = moments::lognormal_step(m[end]);
    return {s.delay_ps, s.slew_ps};
}

double AnalyticModel::buffer_delay(int d, int l, double slew_in, double len) const {
    const tech::Technology& tk = technology();
    // Load seen by the output stage: the whole wire plus the far load
    // (first order; shielding affects mostly the wire delay term).
    const double cload = tk.wire_cap_ff(len) + in_cap_[l];
    return std::max(1.0, isect_ + slew_coef_ * slew_in + 0.69 * out_res_[d] * cload);
}

double AnalyticModel::wire_delay(int d, int l, double slew_in, double len) const {
    (void)slew_in;  // PERI: the 50% delay is insensitive to input slew
    return wire_estimate(out_res_[d], len, in_cap_[l]).delay;
}

double AnalyticModel::wire_slew(int d, int l, double slew_in, double len) const {
    const WireEst e = wire_estimate(out_res_[d], len, in_cap_[l]);
    // The driver regenerates the edge, so the slew entering the wire is
    // the buffer's own output edge, not the component input slew; model
    // it as a fraction of the input slew plus the drive-limited edge.
    const double out_edge = 12.0 + 0.15 * slew_in;
    return moments::peri_ramp_slew(e.step_slew, out_edge);
}

BranchTiming AnalyticModel::branch(int d, int l_left, int l_right, double slew_in, double stem,
                                   double left, double right) const {
    const tech::Technology& tk = technology();
    circuit::RcTree t;
    const int stem_segs = std::max(1, static_cast<int>(stem / 100.0));
    const int split = t.add_wire(0, stem, tk.wire_res_kohm_per_um, tk.wire_cap_ff_per_um,
                                 stem_segs);
    const int lsegs = std::max(1, static_cast<int>(left / 100.0));
    const int lend = t.add_wire(split, left, tk.wire_res_kohm_per_um, tk.wire_cap_ff_per_um,
                                lsegs);
    t.add_cap(lend, in_cap_[l_left]);
    const int rsegs = std::max(1, static_cast<int>(right / 100.0));
    const int rend = t.add_wire(split, right, tk.wire_res_kohm_per_um, tk.wire_cap_ff_per_um,
                                rsegs);
    t.add_cap(rend, in_cap_[l_right]);

    const auto m = moments::moments(t, out_res_[d]);
    const moments::StepResponse sl = moments::lognormal_step(m[lend]);
    const moments::StepResponse sr = moments::lognormal_step(m[rend]);

    BranchTiming bt;
    const double cload = t.total_cap_ff();
    bt.buffer_delay_ps = std::max(1.0, isect_ + slew_coef_ * slew_in + 0.69 * out_res_[d] * cload * 0.5);
    bt.delay_left_ps = sl.delay_ps;
    bt.delay_right_ps = sr.delay_ps;
    const double out_edge = 12.0 + 0.15 * slew_in;
    bt.slew_left_ps = moments::peri_ramp_slew(sl.slew_ps, out_edge);
    bt.slew_right_ps = moments::peri_ramp_slew(sr.slew_ps, out_edge);
    return bt;
}

}  // namespace ctsim::delaylib
