#include "delaylib/eval_cache.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ctsim::delaylib {

namespace {
constexpr double kUnfilled = std::numeric_limits<double>::quiet_NaN();
}

void EvalCache::configure(const Config& cfg) {
    const std::uint64_t id = cfg.model ? cfg.model->instance_id() : 0;
    if (cfg == cfg_ && id == model_id_ && !slots_.empty()) return;
    cfg_ = cfg;
    model_id_ = id;
    type_count_ = cfg.model ? cfg.model->buffers().count() : 0;
    slots_.assign(static_cast<std::size_t>(type_count_) * type_count_, {});
    feasible_run_.assign(static_cast<std::size_t>(type_count_) * type_count_, kUnfilled);
    choice_.assign(type_count_, {});
    stats_ = Stats{};
}

double EvalCache::quantize(double len_um) const {
    if (!cfg_.enabled || cfg_.quantum_um <= 0.0) return len_um;
    return std::round(len_um / cfg_.quantum_um) * cfg_.quantum_um;
}

EvalCache::Slot& EvalCache::slot(int d, int l, double len_um) {
    auto& row = slots_[pair_index(d, l)];
    const int idx = static_cast<int>(std::round(len_um / cfg_.quantum_um));
    if (idx >= static_cast<int>(row.size())) {
        const int want = std::min(std::max(idx + 1, 256), kMaxSlots);
        if (idx >= want) {
            // Beyond the table: serve from a single overflow slot that
            // is never marked filled (degenerates to pass-through).
            static thread_local Slot overflow;
            overflow = Slot{};
            return overflow;
        }
        row.resize(want, Slot{});
    }
    return row[idx];
}

double EvalCache::wire_delay_slow(int d, int l, double len_um) {
    if (!cfg_.enabled || cfg_.quantum_um <= 0.0)
        return cfg_.model->wire_delay(d, l, cfg_.assumed_slew_ps, len_um);
    const double q = quantize(len_um);
    Slot& s = slot(d, l, q);
    if (!(s.filled & 1)) {
        s.wire_delay = cfg_.model->wire_delay(d, l, cfg_.assumed_slew_ps, q);
        s.filled |= 1;
        ++stats_.misses;
    } else {
        ++stats_.hits;
    }
    return s.wire_delay;
}

double EvalCache::wire_slew_slow(int d, int l, double len_um) {
    if (!cfg_.enabled || cfg_.quantum_um <= 0.0)
        return cfg_.model->wire_slew(d, l, cfg_.assumed_slew_ps, len_um);
    const double q = quantize(len_um);
    Slot& s = slot(d, l, q);
    if (!(s.filled & 2)) {
        s.wire_slew = cfg_.model->wire_slew(d, l, cfg_.assumed_slew_ps, q);
        s.filled |= 2;
        ++stats_.misses;
    } else {
        ++stats_.hits;
    }
    return s.wire_slew;
}

double EvalCache::stage_delay_slow(int d, int l, double len_um) {
    if (!cfg_.enabled || cfg_.quantum_um <= 0.0)
        return cfg_.model->buffer_delay(d, l, cfg_.assumed_slew_ps, len_um) +
               cfg_.model->wire_delay(d, l, cfg_.assumed_slew_ps, len_um);
    const double q = quantize(len_um);
    Slot& s = slot(d, l, q);
    if (!(s.filled & 4)) {
        s.stage_delay = cfg_.model->buffer_delay(d, l, cfg_.assumed_slew_ps, q) +
                        cfg_.model->wire_delay(d, l, cfg_.assumed_slew_ps, q);
        s.filled |= 4;
        ++stats_.misses;
    } else {
        ++stats_.hits;
    }
    return s.stage_delay;
}

double EvalCache::max_feasible_run(int d, int l) {
    double& cached = feasible_run_[pair_index(d, l)];
    if (cfg_.enabled && !std::isnan(cached)) {
        ++stats_.hits;
        return cached;
    }
    // Mirrors cts::max_feasible_run with upper_um = 1e9: the end slew
    // is monotone in length; bisect inside the characterized domain.
    const DelayModel& m = *cfg_.model;
    const double assumed = cfg_.assumed_slew_ps;
    const double target = cfg_.target_slew_ps;
    double lo = 0.0;
    double hi = 4500.0;
    double run;
    if (m.wire_slew(d, l, assumed, hi) <= target) {
        run = hi;
    } else {
        for (int it = 0; it < 40; ++it) {
            const double mid = 0.5 * (lo + hi);
            if (m.wire_slew(d, l, assumed, mid) <= target)
                lo = mid;
            else
                hi = mid;
        }
        run = lo;
    }
    ++stats_.misses;
    if (cfg_.enabled) cached = run;
    return run;
}

std::optional<int> EvalCache::choose_buffer(int l, double len_um) {
    const auto direct = [&](double len) -> std::optional<int> {
        std::optional<int> best;
        double best_gap = std::numeric_limits<double>::max();
        for (int t = 0; t < type_count_; ++t) {
            const double slew = cfg_.model->wire_slew(t, l, cfg_.assumed_slew_ps, len);
            if (slew > cfg_.target_slew_ps) continue;
            if (!cfg_.intelligent_sizing) return t;
            const double gap = cfg_.target_slew_ps - slew;
            if (gap < best_gap) {
                best_gap = gap;
                best = t;
            }
        }
        return best;
    };
    if (!cfg_.enabled || cfg_.quantum_um <= 0.0) return direct(len_um);

    const double q = quantize(len_um);
    const int idx = static_cast<int>(std::round(q / cfg_.quantum_um));
    auto& row = choice_[l];
    if (idx >= kMaxSlots) return direct(q);
    if (idx >= static_cast<int>(row.size()))
        row.resize(std::min(std::max(idx + 1, 256), kMaxSlots), -2);
    if (row[idx] == -2) {
        const auto t = direct(q);
        row[idx] = static_cast<std::int8_t>(t ? *t : -1);
        ++stats_.misses;
    } else {
        ++stats_.hits;
    }
    return row[idx] >= 0 ? std::optional<int>(row[idx]) : std::nullopt;
}

EvalCache& EvalCache::thread_local_for(const Config& cfg) {
    static thread_local EvalCache cache;
    cache.configure(cfg);
    return cache;
}

}  // namespace ctsim::delaylib
