// Memoized delay-model evaluation for the synthesis hot path.
//
// The bottom-up router queries the delay model with a very regular
// pattern: a fixed pessimistic input slew (the assumed slew of the
// synthesis options), a small set of driver/load types, and wire
// lengths that are sums of grid pitches. Re-evaluating the fitted
// polynomial surfaces for every label relaxation dominates synthesis
// time; this cache collapses those queries to a table lookup keyed on
// (driver type, load type, quantized wire length).
//
// Quantization: lengths are rounded to the nearest multiple of
// `quantum_um`. Because delay and slew are smooth in length (fitted
// low-order polynomials), the substitution error is bounded by
// (quantum/2) * max|d(delay)/d(len)| -- well under a tenth of a ps for
// the default 2 um quantum. Pass `quantum_um <= 0` (or construct with
// `enabled = false`) to make every call a transparent pass-through to
// the underlying model, which is how the unoptimized reference path is
// measured.
//
// The feasible-run and buffer-choice queries of the router
// (`max_feasible_run`, `choose_buffer`) are memoized here as well:
// the bisection behind max_feasible_run costs ~40 slew evaluations
// and the seed re-ran it for every maze call.
//
// Instances are NOT thread-safe; use `thread_local_for` to get a
// per-thread cache bound to a (model, options) configuration. Cached
// values are purely functional in the key, so per-thread caches yield
// bit-identical results regardless of query interleaving.
#ifndef CTSIM_DELAYLIB_EVAL_CACHE_H
#define CTSIM_DELAYLIB_EVAL_CACHE_H

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "delaylib/delay_model.h"

namespace ctsim::delaylib {

class EvalCache {
  public:
    struct Config {
        const DelayModel* model{nullptr};
        double assumed_slew_ps{80.0};   ///< input slew of every cached query
        double target_slew_ps{80.0};    ///< slew budget for feasible-run queries
        double quantum_um{2.0};         ///< length quantization step
        bool intelligent_sizing{true};  ///< buffer-choice policy
        bool enabled{true};             ///< false = transparent pass-through

        friend bool operator==(const Config& a, const Config& b) {
            return a.model == b.model && a.assumed_slew_ps == b.assumed_slew_ps &&
                   a.target_slew_ps == b.target_slew_ps && a.quantum_um == b.quantum_um &&
                   a.intelligent_sizing == b.intelligent_sizing && a.enabled == b.enabled;
        }
    };

    EvalCache() = default;
    explicit EvalCache(const Config& cfg) { configure(cfg); }

    /// (Re)bind the cache to a configuration, dropping entries when it
    /// changed. Cheap when the configuration is unchanged.
    void configure(const Config& cfg);
    const Config& config() const { return cfg_; }

    /// Length after quantization (identity when disabled).
    double quantize(double len_um) const;

    /// Single-wire queries at the assumed slew, quantized length.
    /// The maze router's label relaxation issues tens of millions of
    /// these per synthesis, so the filled-slot hit path is inlined
    /// here; misses (and the pass-through mode) take the out-of-line
    /// slow path, which returns bit-identical values.
    double wire_delay(int d, int l, double len_um) {
        if (const Slot* s = hit_slot(d, l, len_um); s && (s->filled & 1)) {
            ++stats_.hits;
            return s->wire_delay;
        }
        return wire_delay_slow(d, l, len_um);
    }
    double wire_slew(int d, int l, double len_um) {
        if (const Slot* s = hit_slot(d, l, len_um); s && (s->filled & 2)) {
            ++stats_.hits;
            return s->wire_slew;
        }
        return wire_slew_slow(d, l, len_um);
    }
    /// buffer_delay + wire_delay of a full stage.
    double stage_delay(int d, int l, double len_um) {
        if (const Slot* s = hit_slot(d, l, len_um); s && (s->filled & 4)) {
            ++stats_.hits;
            return s->stage_delay;
        }
        return stage_delay_slow(d, l, len_um);
    }

    /// Largest run driven by `d` into `l` holding the target slew
    /// (memoized bisection; matches cts::max_feasible_run with its
    /// default 4500 um domain cap).
    double max_feasible_run(int d, int l);

    /// Buffer type for committing a run of `len_um` into load `l`
    /// (memoized; matches cts::choose_buffer). -1 encodes "no type
    /// holds the target".
    std::optional<int> choose_buffer(int l, double len_um);

    /// Per-thread cache bound to `cfg`; reconfigured (and flushed) when
    /// the configuration changes between calls on the same thread.
    static EvalCache& thread_local_for(const Config& cfg);

    /// Query counters, for tests and the perf harness.
    struct Stats {
        std::uint64_t hits{0};
        std::uint64_t misses{0};
    };
    const Stats& stats() const { return stats_; }

  private:
    struct Slot {
        double wire_delay;
        double wire_slew;
        double stage_delay;
        std::uint8_t filled;  // bit 0: wire_delay, bit 1: wire_slew, bit 2: stage_delay
    };

    int pair_index(int d, int l) const { return d * type_count_ + l; }
    Slot& slot(int d, int l, double len_um);
    /// Existing slot for a length already inside the grown table, or
    /// nullptr (disabled cache, out-of-range index, unfilled rows).
    /// Uses the same std::round quantization as slot(), so hit/miss
    /// paths agree on the slot for every length.
    const Slot* hit_slot(int d, int l, double len_um) const {
        if (!cfg_.enabled || cfg_.quantum_um <= 0.0) return nullptr;
        const auto& row = slots_[pair_index(d, l)];
        const auto idx =
            static_cast<std::size_t>(static_cast<int>(std::round(len_um / cfg_.quantum_um)));
        return idx < row.size() ? &row[idx] : nullptr;
    }
    double wire_delay_slow(int d, int l, double len_um);
    double wire_slew_slow(int d, int l, double len_um);
    double stage_delay_slow(int d, int l, double len_um);

    Config cfg_{};
    /// instance_id() of cfg_.model, captured while it was alive: the
    /// allocator may hand a new model a freed model's address, and a
    /// pointer-only staleness check would then serve the old model's
    /// delays. (The stale pointer itself is never dereferenced.)
    std::uint64_t model_id_{0};
    int type_count_{0};
    // Per (d, l) pair: slots indexed by round(len / quantum), grown on
    // demand. Lengths beyond kMaxSlots * quantum fall through uncached.
    static constexpr int kMaxSlots = 16384;
    std::vector<std::vector<Slot>> slots_;
    std::vector<double> feasible_run_;        // per (d, l); NaN = unfilled
    std::vector<std::vector<std::int8_t>> choice_;  // per l, by quantized len; -2 unfilled
    Stats stats_{};
};

}  // namespace ctsim::delaylib

#endif  // CTSIM_DELAYLIB_EVAL_CACHE_H
