// Characterization harness: the Fig 3.3 / Fig 3.5 measurement circuits.
//
// For every (driver type, load type) combination we sweep the input
// wire length Linput (which shapes the realistic curved input
// waveform and thereby the input slew) and the load wire length(s),
// simulate with the transient solver, and record
//   input slew, buffer intrinsic delay, wire delay(s), wire slew(s).
// The paper runs exactly these sweeps in SPICE and then surface-fits
// them in MATLAB (Sec 3.2); fitted_library.h does the fitting here.
#ifndef CTSIM_DELAYLIB_CHARACTERIZER_H
#define CTSIM_DELAYLIB_CHARACTERIZER_H

#include <vector>

#include "sim/stage_solver.h"
#include "tech/buffer_lib.h"
#include "tech/technology.h"

namespace ctsim::delaylib {

/// One single-wire measurement (Fig 3.3(b)).
struct SingleWireSample {
    double input_slew_ps{0.0};
    double wire_len_um{0.0};
    double buffer_delay_ps{0.0};
    double wire_delay_ps{0.0};
    double wire_slew_ps{0.0};
};

/// One branch measurement (Fig 3.5).
struct BranchSample {
    double input_slew_ps{0.0};
    double stem_len_um{0.0};
    double left_len_um{0.0};
    double right_len_um{0.0};
    double buffer_delay_ps{0.0};
    double delay_left_ps{0.0};
    double delay_right_ps{0.0};
    double slew_left_ps{0.0};
    double slew_right_ps{0.0};
};

struct SweepGrid {
    /// Lengths of the slew-shaping input wire (Fig 3.3's Linput).
    std::vector<double> input_lens_um{1.0, 500.0, 1200.0, 2000.0, 3000.0, 4200.0};
    /// Load wire lengths for single-wire components.
    std::vector<double> wire_lens_um{10.0,   250.0,  600.0,  1000.0, 1500.0,
                                     2100.0, 2800.0, 3600.0, 4500.0};
    /// Branch sweep: subset of input lens, stem lens and branch lens.
    std::vector<double> branch_input_lens_um{1.0, 1500.0, 3500.0};
    std::vector<double> stem_lens_um{10.0, 600.0, 1500.0, 2800.0};
    std::vector<double> branch_lens_um{50.0, 800.0, 1800.0, 3000.0};

    sim::SolverOptions solver{};

    /// Coarse grid for fast unit tests.
    static SweepGrid quick();
};

class Characterizer {
  public:
    Characterizer(const tech::Technology& tech, const tech::BufferLibrary& lib)
        : tech_(&tech), lib_(&lib) {}

    /// Single measurement on the Fig 3.3 circuit.
    SingleWireSample measure_single(int driver, int load, double input_len_um,
                                    double wire_len_um,
                                    const sim::SolverOptions& opt = {}) const;

    /// Single measurement on the Fig 3.5 circuit (stem + two branches).
    BranchSample measure_branch(int driver, int load, double input_len_um, double stem_um,
                                double left_um, double right_um,
                                const sim::SolverOptions& opt = {}) const;

    /// Full sweep for one (driver, load) pair.
    std::vector<SingleWireSample> sweep_single(int driver, int load,
                                               const SweepGrid& grid) const;
    std::vector<BranchSample> sweep_branch(int driver, int load, const SweepGrid& grid) const;

  private:
    /// Shape a realistic curved input: ideal ramp -> Binput (same type
    /// as the driver) -> wire of input_len -> waveform at driver input.
    /// Returns the waveform and its measured 10-90% slew / t50.
    struct ShapedInput {
        sim::Waveform wave;
        double slew_ps{0.0};
        double t50_ps{0.0};
    };
    ShapedInput shape_input(int driver, double input_len_um,
                            const sim::SolverOptions& opt) const;

    const tech::Technology* tech_;
    const tech::BufferLibrary* lib_;
};

}  // namespace ctsim::delaylib

#endif  // CTSIM_DELAYLIB_CHARACTERIZER_H
