#include "delaylib/fitted_library.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "util/atomic_file.h"
#include "util/fault_injection.h"
#include "util/retry.h"
#include "util/status.h"

namespace ctsim::delaylib {

namespace {

// v2 prepends a "checksum <fnv1a64-hex>" line over the payload, so a
// torn or bit-flipped cache is rejected instead of silently loading
// wrong coefficients. v1 caches fail the header check and fall back
// to re-characterization (which rewrites them as v2).
constexpr char kMagic[] = "ctsim-delaylib-v2";

/// FNV-1a over the serialized payload: cheap, dependency-free, and
/// plenty for torn-write / bit-rot detection (not an integrity MAC).
std::uint64_t fnv1a64(const std::string& s) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

[[noreturn]] void fail_cache(const std::string& what) {
    util::throw_status(util::Status::cache_corruption("delay library: " + what));
}

std::atomic<std::uint64_t> g_characterizations{0};

}  // namespace

double FitReport::worst_max_abs() const {
    double w = 0.0;
    for (const Entry& e : entries) w = std::max(w, e.residuals.max_abs);
    return w;
}

int FittedLibrary::pair_index(int d, int l) const {
    const int n = buffers().count();
    if (d < 0 || d >= n || l < 0 || l >= n)
        throw std::out_of_range("delay library: buffer type out of range");
    return d * n + l;
}

void FittedLibrary::clamp_single(double& slew, double& len) const {
    slew = std::clamp(slew, min_slew_, max_slew_);
    len = std::clamp(len, 0.0, max_len_);
}

std::unique_ptr<FittedLibrary> FittedLibrary::characterize(const tech::Technology& tech,
                                                           const tech::BufferLibrary& lib,
                                                           const FitOptions& opt) {
    g_characterizations.fetch_add(1, std::memory_order_relaxed);
    std::unique_ptr<FittedLibrary> out(new FittedLibrary(tech, lib));
    const int n = lib.count();
    out->single_.resize(static_cast<std::size_t>(n) * n);
    out->branch_.resize(static_cast<std::size_t>(n) * n);
    out->max_len_ = *std::max_element(opt.grid.wire_lens_um.begin(),
                                      opt.grid.wire_lens_um.end());
    out->max_branch_len_ = *std::max_element(opt.grid.branch_lens_um.begin(),
                                             opt.grid.branch_lens_um.end());
    out->max_stem_len_ = *std::max_element(opt.grid.stem_lens_um.begin(),
                                           opt.grid.stem_lens_um.end());

    Characterizer ch(tech, lib);
    double smin = 1e9, smax = 0.0;

    for (int d = 0; d < n; ++d) {
        for (int l = 0; l < n; ++l) {
            const auto samples = ch.sweep_single(d, l, opt.grid);
            std::vector<std::vector<double>> xs;
            std::vector<double> bd, wd, ws;
            xs.reserve(samples.size());
            for (const SingleWireSample& s : samples) {
                xs.push_back({s.input_slew_ps, s.wire_len_um});
                bd.push_back(s.buffer_delay_ps);
                wd.push_back(s.wire_delay_ps);
                ws.push_back(s.wire_slew_ps);
                smin = std::min(smin, s.input_slew_ps);
                smax = std::max(smax, s.input_slew_ps);
            }
            SingleFit& f = out->single_[out->pair_index(d, l)];
            f.buffer_delay = la::PolySurface::fit(2, opt.single_degree, xs, bd);
            f.wire_delay = la::PolySurface::fit(2, opt.single_degree, xs, wd);
            f.wire_slew = la::PolySurface::fit(2, opt.single_degree, xs, ws);
            out->report_.entries.push_back({d, l, "buffer_delay", f.buffer_delay.residuals(xs, bd)});
            out->report_.entries.push_back({d, l, "wire_delay", f.wire_delay.residuals(xs, wd)});
            out->report_.entries.push_back({d, l, "wire_slew", f.wire_slew.residuals(xs, ws)});

            const auto bsamples = ch.sweep_branch(d, l, opt.grid);
            std::vector<std::vector<double>> bxs;
            std::vector<double> bbd, dl, dr, sl, sr;
            for (const BranchSample& s : bsamples) {
                bxs.push_back({s.input_slew_ps, s.stem_len_um, s.left_len_um, s.right_len_um});
                bbd.push_back(s.buffer_delay_ps);
                dl.push_back(s.delay_left_ps);
                dr.push_back(s.delay_right_ps);
                sl.push_back(s.slew_left_ps);
                sr.push_back(s.slew_right_ps);
            }
            BranchFit& bf = out->branch_[out->pair_index(d, l)];
            bf.buffer_delay = la::PolySurface::fit(4, opt.branch_degree, bxs, bbd);
            bf.delay_left = la::PolySurface::fit(4, opt.branch_degree, bxs, dl);
            bf.delay_right = la::PolySurface::fit(4, opt.branch_degree, bxs, dr);
            bf.slew_left = la::PolySurface::fit(4, opt.branch_degree, bxs, sl);
            bf.slew_right = la::PolySurface::fit(4, opt.branch_degree, bxs, sr);
            out->report_.entries.push_back({d, l, "branch_delay_left", bf.delay_left.residuals(bxs, dl)});
            out->report_.entries.push_back({d, l, "branch_delay_right", bf.delay_right.residuals(bxs, dr)});
            out->report_.entries.push_back({d, l, "branch_slew_left", bf.slew_left.residuals(bxs, sl)});
            out->report_.entries.push_back({d, l, "branch_slew_right", bf.slew_right.residuals(bxs, sr)});
        }
    }
    out->min_slew_ = smin;
    out->max_slew_ = smax;
    return out;
}

double FittedLibrary::buffer_delay(int d, int l, double slew_in, double len) const {
    clamp_single(slew_in, len);
    return single_[pair_index(d, l)].buffer_delay(slew_in, len);
}

double FittedLibrary::wire_delay(int d, int l, double slew_in, double len) const {
    clamp_single(slew_in, len);
    return std::max(0.0, single_[pair_index(d, l)].wire_delay(slew_in, len));
}

double FittedLibrary::wire_slew(int d, int l, double slew_in, double len) const {
    clamp_single(slew_in, len);
    return std::max(1.0, single_[pair_index(d, l)].wire_slew(slew_in, len));
}

BranchTiming FittedLibrary::branch(int d, int l_left, int l_right, double slew_in, double stem,
                                   double left, double right) const {
    slew_in = std::clamp(slew_in, min_slew_, max_slew_);
    stem = std::clamp(stem, 0.0, max_stem_len_);
    left = std::clamp(left, 0.0, max_branch_len_);
    right = std::clamp(right, 0.0, max_branch_len_);
    const std::array<double, 4> x{slew_in, stem, left, right};

    // Left quantities come from the (d, left-load) surfaces and right
    // ones from (d, right-load): the opposite branch's load enters only
    // through its (second-order) effect on the shared stem.
    const BranchFit& fl = branch_[pair_index(d, l_left)];
    const BranchFit& fr = branch_[pair_index(d, l_right)];
    BranchTiming t;
    t.buffer_delay_ps = 0.5 * (fl.buffer_delay.evaluate(x) + fr.buffer_delay.evaluate(x));
    t.delay_left_ps = std::max(0.0, fl.delay_left.evaluate(x));
    t.delay_right_ps = std::max(0.0, fr.delay_right.evaluate(x));
    t.slew_left_ps = std::max(1.0, fl.slew_left.evaluate(x));
    t.slew_right_ps = std::max(1.0, fr.slew_right.evaluate(x));
    return t;
}

void FittedLibrary::save(std::ostream& os) const {
    // Serialize the payload first so its checksum can lead the file:
    // load() then validates before parsing a single coefficient.
    std::ostringstream body;
    save_body(body);
    const std::string payload = body.str();
    char sum[24];
    std::snprintf(sum, sizeof(sum), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(payload)));
    os << kMagic << '\n' << "checksum " << sum << '\n' << payload;
}

void FittedLibrary::save_body(std::ostream& os) const {
    os << buffers().count() << '\n';
    os.precision(17);
    os << max_len_ << ' ' << max_branch_len_ << ' ' << max_stem_len_ << ' ' << min_slew_ << ' '
       << max_slew_ << '\n';
    for (const SingleFit& f : single_) {
        f.buffer_delay.serialize(os);
        f.wire_delay.serialize(os);
        f.wire_slew.serialize(os);
    }
    for (const BranchFit& f : branch_) {
        f.buffer_delay.serialize(os);
        f.delay_left.serialize(os);
        f.delay_right.serialize(os);
        f.slew_left.serialize(os);
        f.slew_right.serialize(os);
    }
    // Persist the fit report so reloaded libraries can still print it.
    os << report_.entries.size() << '\n';
    for (const FitReport::Entry& e : report_.entries)
        os << e.driver << ' ' << e.load << ' ' << e.quantity << ' ' << e.residuals.max_abs
           << ' ' << e.residuals.rms << '\n';
}

std::unique_ptr<FittedLibrary> FittedLibrary::load(std::istream& is,
                                                   const tech::Technology& tech,
                                                   const tech::BufferLibrary& lib) {
    // Fault probe: a fired site behaves like a cache that failed
    // validation, driving the re-characterization fallback.
    if (util::fault_fire(util::FaultSite::cache_load_corrupt))
        fail_cache("cache rejected (injected fault)");

    std::string header, sumline;
    if (!std::getline(is, header)) fail_cache("empty cache");
    if (header != kMagic) fail_cache("bad cache header (magic mismatch; expected ctsim-delaylib-v2)");
    if (!std::getline(is, sumline)) fail_cache("missing checksum line");
    unsigned long long want = 0;
    if (std::sscanf(sumline.c_str(), "checksum %16llx", &want) != 1)
        fail_cache("malformed checksum line");
    const std::string payload((std::istreambuf_iterator<char>(is)),
                              std::istreambuf_iterator<char>());
    if (fnv1a64(payload) != static_cast<std::uint64_t>(want))
        fail_cache("checksum mismatch (torn or corrupted cache)");

    std::istringstream body(payload);
    return load_body(body, tech, lib);
}

std::unique_ptr<FittedLibrary> FittedLibrary::load_body(std::istream& is,
                                                        const tech::Technology& tech,
                                                        const tech::BufferLibrary& lib) {
    int n = 0;
    is >> n;
    if (n != lib.count()) fail_cache("cache was built for a different buffer count");

    std::unique_ptr<FittedLibrary> out(new FittedLibrary(tech, lib));
    is >> out->max_len_ >> out->max_branch_len_ >> out->max_stem_len_ >> out->min_slew_ >>
        out->max_slew_;
    out->single_.resize(static_cast<std::size_t>(n) * n);
    out->branch_.resize(static_cast<std::size_t>(n) * n);
    for (SingleFit& f : out->single_) {
        f.buffer_delay = la::PolySurface::deserialize(is);
        f.wire_delay = la::PolySurface::deserialize(is);
        f.wire_slew = la::PolySurface::deserialize(is);
    }
    for (BranchFit& f : out->branch_) {
        f.buffer_delay = la::PolySurface::deserialize(is);
        f.delay_left = la::PolySurface::deserialize(is);
        f.delay_right = la::PolySurface::deserialize(is);
        f.slew_left = la::PolySurface::deserialize(is);
        f.slew_right = la::PolySurface::deserialize(is);
    }
    std::size_t nrep = 0;
    is >> nrep;
    for (std::size_t i = 0; i < nrep && is; ++i) {
        FitReport::Entry e;
        is >> e.driver >> e.load >> e.quantity >> e.residuals.max_abs >> e.residuals.rms;
        out->report_.entries.push_back(e);
    }
    if (!is) fail_cache("truncated cache");
    return out;
}

std::string FittedLibrary::resolve_cache_path(const std::string& path) {
    if (path.empty() || path.front() == '/') return path;
    // Never default to the CWD: a bare-filename cache path used to
    // land wherever the tool was started -- running ctest from the
    // repo root littered the source tree with *.cache files. The
    // directory itself is created lazily by write_file_atomic.
    std::string dir;
    if (const char* env = std::getenv("CTSIM_CACHE_DIR"); env && *env) {
        dir = env;
    } else if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg) {
        dir = std::string(xdg) + "/ctsim";
    } else if (const char* home = std::getenv("HOME"); home && *home) {
        dir = std::string(home) + "/.cache/ctsim";
    } else {
        dir = "/tmp/ctsim-cache-" + std::to_string(::getuid());
    }
    if (dir.back() != '/') dir += '/';
    return dir + path;
}

bool FittedLibrary::save_cache_atomic(const std::string& where) const {
    // Write-to-temp + rename via the shared publisher: concurrent
    // characterizers each publish a complete file, so a reader never
    // observes a torn cache (the pre-PR-6 plain ofstream write had
    // exactly that window), and the pid-suffixed temp is unlinked on
    // every failure branch. A transient publish failure (the injector
    // models it as cache_write_fail) is retried under a bounded
    // deterministic backoff; a persistent one only costs the next
    // process a re-characterization.
    std::ostringstream body;
    save(body);
    const std::string payload = body.str();
    const util::Status st = util::retry_status(util::RetryPolicy{}, [&] {
        return util::write_file_atomic(where, payload, util::FaultSite::cache_write_fail);
    });
    return st.ok();
}

std::unique_ptr<FittedLibrary> FittedLibrary::load_or_characterize(
    const std::string& path, const tech::Technology& tech, const tech::BufferLibrary& lib,
    const FitOptions& opt, util::Status* cache_status) {
    const std::string where = resolve_cache_path(path);
    {
        std::ifstream in(where);
        if (in) {
            try {
                auto loaded = load(in, tech, lib);
                if (cache_status) *cache_status = util::Status{};
                return loaded;
            } catch (const util::Error& e) {
                // fall through to re-characterization; surface why
                if (cache_status) *cache_status = e.status();
            } catch (const std::exception& e) {
                if (cache_status) *cache_status = util::Status::internal(e.what());
            }
        } else if (cache_status) {
            *cache_status = util::Status{};  // no cache yet: not an anomaly
        }
    }
    auto fresh = characterize(tech, lib, opt);
    fresh->save_cache_atomic(where);
    return fresh;
}

std::shared_ptr<const FittedLibrary> FittedLibrary::load_or_characterize_shared(
    const std::string& path, const tech::Technology& tech, const tech::BufferLibrary& lib,
    const FitOptions& opt, util::Status* cache_status) {
    // Once-style latch per resolved cache path: the first caller
    // inserts a pending future and does the (seconds-long) work
    // OUTSIDE the registry lock; racers block on the future instead
    // of re-characterizing. Pre-latch, two daemon requests hitting a
    // cold cache both paid a characterization and both published --
    // wasted seconds and a pointless double write. Failures clear the
    // latch so a later call can retry (e.g. after the operator fixes
    // a permissions problem).
    using Future = std::shared_future<std::shared_ptr<const FittedLibrary>>;
    static std::mutex mu;
    static std::map<std::string, Future> registry;

    const std::string where = resolve_cache_path(path);
    std::promise<std::shared_ptr<const FittedLibrary>> promise;
    Future fut;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = registry.find(where);
        if (it == registry.end()) {
            owner = true;
            fut = promise.get_future().share();
            registry.emplace(where, fut);
        } else {
            fut = it->second;
        }
    }
    if (owner) {
        try {
            promise.set_value(load_or_characterize(path, tech, lib, opt, cache_status));
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mu);
            registry.erase(where);
        }
    } else if (cache_status) {
        *cache_status = util::Status{};  // the owner already reported
    }
    return fut.get();
}

std::uint64_t FittedLibrary::characterization_count() {
    return g_characterizations.load(std::memory_order_relaxed);
}

}  // namespace ctsim::delaylib
