// The pre-characterized delay/slew library (Sec 3.2).
//
// For each (driver type, load type) pair the library holds polynomial
// surfaces over (input slew, wire length) for
//   buffer intrinsic delay, wire delay, wire slew       (single-wire)
// and over (input slew, stem, left len, right len) for
//   buffer delay, left/right wire delay, left/right slew (branch).
//
// Single-wire fits are "3rd- or 4th-order polynomials" (we use 4th);
// branch fits are the paper's "hyperplane fitting" generalization
// (we use total degree 3 over 4 variables). Characterization costs a
// few seconds, so the library can be serialized to a text cache and
// reloaded (`save`/`load`).
#ifndef CTSIM_DELAYLIB_FITTED_LIBRARY_H
#define CTSIM_DELAYLIB_FITTED_LIBRARY_H

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "delaylib/characterizer.h"
#include "delaylib/delay_model.h"
#include "la/polyfit.h"
#include "util/status.h"

namespace ctsim::delaylib {

struct FitOptions {
    SweepGrid grid{};
    /// Single-wire fits: "3rd- or 4th-order polynomials" (Sec 3.2.1).
    int single_degree{4};
    /// Branch fits are low-order by design ("hyperplane fitting",
    /// Sec 3.2.2); every sweep dimension must keep more distinct values
    /// than this degree or the Vandermonde system loses rank.
    int branch_degree{2};
};

/// Fit-quality report, for the Fig 3.4 / 3.6 / 3.7 benches.
struct FitReport {
    struct Entry {
        int driver{0};
        int load{0};
        std::string quantity;
        la::PolySurface::Residuals residuals;
    };
    std::vector<Entry> entries;
    double worst_max_abs() const;
};

class FittedLibrary final : public DelayModel {
  public:
    /// Run the full characterization sweeps and fit all surfaces.
    static std::unique_ptr<FittedLibrary> characterize(const tech::Technology& tech,
                                                       const tech::BufferLibrary& lib,
                                                       const FitOptions& opt = {});

    /// Load a previously saved library. The cache is a versioned text
    /// format: a magic line ("ctsim-delaylib-v2"), an FNV-1a checksum
    /// of the payload, then the payload itself. Any mismatch -- stale
    /// magic, checksum failure, truncation, wrong buffer count --
    /// throws util::Error{cache_corruption}; callers that can
    /// re-characterize should catch it and fall back.
    static std::unique_ptr<FittedLibrary> load(std::istream& is, const tech::Technology& tech,
                                               const tech::BufferLibrary& lib);
    /// Load from `path` if present, otherwise characterize and save.
    /// A RELATIVE `path` is resolved to a cache directory
    /// (resolve_cache_path below) -- never the CWD -- so tools that
    /// default to a bare filename stop dropping caches into whatever
    /// directory they were started from; absolute paths are used
    /// verbatim. A corrupt cache is never fatal: the library is
    /// re-characterized and rewritten; when `cache_status` is
    /// non-null it receives why the cache was rejected (ok when it
    /// loaded or simply did not exist) so tools can warn.
    static std::unique_ptr<FittedLibrary> load_or_characterize(
        const std::string& path, const tech::Technology& tech,
        const tech::BufferLibrary& lib, const FitOptions& opt = {},
        util::Status* cache_status = nullptr);

    /// load_or_characterize for long-lived multi-threaded callers
    /// (the ctsimd serving session): first touch per RESOLVED cache
    /// path is serialized behind a once-style latch, so N threads
    /// racing a cold cache pay exactly ONE characterization, and the
    /// fitted library is shared immutably process-wide thereafter.
    /// The thread that performs the work reports through
    /// `cache_status` exactly like load_or_characterize; latecomers
    /// receive ok (the cache outcome was already reported once). A
    /// failed first touch (throwing load AND characterize) rethrows
    /// to every waiter and clears the latch so a later call retries.
    /// Distinct FitOptions must use distinct cache paths (they
    /// already must, or the on-disk cache would alias them too).
    static std::shared_ptr<const FittedLibrary> load_or_characterize_shared(
        const std::string& path, const tech::Technology& tech,
        const tech::BufferLibrary& lib, const FitOptions& opt = {},
        util::Status* cache_status = nullptr);

    /// Full characterization sweeps this process has run -- the test
    /// observable pinning the once-latch contract above.
    static std::uint64_t characterization_count();

    /// The cache location load_or_characterize will actually use.
    /// Absolute paths are used verbatim. A relative `path` is
    /// prefixed with, in order of preference: CTSIM_CACHE_DIR when
    /// set; $XDG_CACHE_HOME/ctsim; $HOME/.cache/ctsim; /tmp (last
    /// resort). The CWD is NEVER the default: bare-filename defaults
    /// used to litter whatever directory the tool was started from
    /// (tests running at the repo root dropped *.cache files into the
    /// source tree). The build system points CTSIM_CACHE_DIR at the
    /// build tree for every test and bench target.
    static std::string resolve_cache_path(const std::string& path);

    void save(std::ostream& os) const;

    /// Publish the serialized library at `where` atomically: write a
    /// pid-suffixed temp file beside it, then rename into place, so a
    /// concurrent reader never observes a torn cache. Tolerates the
    /// target directory being deleted mid-save (recreate + one retry).
    /// Best-effort: returns false instead of throwing on any failure.
    bool save_cache_atomic(const std::string& where) const;

    double buffer_delay(int d, int l, double slew_in, double len) const override;
    double wire_delay(int d, int l, double slew_in, double len) const override;
    double wire_slew(int d, int l, double slew_in, double len) const override;
    BranchTiming branch(int d, int l_left, int l_right, double slew_in, double stem,
                        double left, double right) const override;

    const FitReport& report() const { return report_; }

    /// Domain the surfaces were fitted on; queries are clamped to it.
    double max_wire_len() const { return max_len_; }
    double min_slew() const { return min_slew_; }
    double max_slew() const { return max_slew_; }

  private:
    FittedLibrary(const tech::Technology& tech, const tech::BufferLibrary& lib)
        : DelayModel(tech, lib) {}

    struct SingleFit {
        la::PolySurface buffer_delay;
        la::PolySurface wire_delay;
        la::PolySurface wire_slew;
    };
    struct BranchFit {
        la::PolySurface buffer_delay;
        la::PolySurface delay_left;
        la::PolySurface delay_right;
        la::PolySurface slew_left;
        la::PolySurface slew_right;
    };

    int pair_index(int d, int l) const;
    void clamp_single(double& slew, double& len) const;

    /// Serialize / parse the checksummed payload (everything after the
    /// magic + checksum header lines that save()/load() add).
    void save_body(std::ostream& os) const;
    static std::unique_ptr<FittedLibrary> load_body(std::istream& is,
                                                    const tech::Technology& tech,
                                                    const tech::BufferLibrary& lib);

    std::vector<SingleFit> single_;  // [d * count + l]
    std::vector<BranchFit> branch_;
    FitReport report_;
    double max_len_{4500.0};
    double max_branch_len_{3000.0};
    double max_stem_len_{2800.0};
    double min_slew_{5.0};
    double max_slew_{170.0};
};

}  // namespace ctsim::delaylib

#endif  // CTSIM_DELAYLIB_FITTED_LIBRARY_H
