// Delay/slew model interface for buffered clock tree components.
//
// Following Sec 3.2, the clock tree is partitioned at buffered nodes
// into two component shapes, and all timing queries are expressed on
// those shapes:
//
//  single-wire:  [driver buffer] --- wire L --- [load buffer or sink]
//  branch:       [driver buffer] -- stem -- + -- left  -- [load]
//                                           `--- right -- [load]
//
// Queries take the driver's *input* slew, because that is what the
// paper identifies as the dominant, hard-to-predict variable in
// bottom-up synthesis. Sinks are mapped to the buffer type of nearest
// input capacitance ("Components ending with a sink can be
// approximated by a component ending with a buffer of similar load
// capacitance").
//
// Two implementations exist:
//  * FittedLibrary (fitted_library.h) - the paper's pre-characterized
//    polynomial library, built from transient-simulation sweeps;
//  * AnalyticModel (analytic_model.h) - closed-form moment-based
//    estimates; fast, used by baselines and as a cross-check.
#ifndef CTSIM_DELAYLIB_DELAY_MODEL_H
#define CTSIM_DELAYLIB_DELAY_MODEL_H

#include <cstdint>

#include "tech/buffer_lib.h"
#include "tech/technology.h"

namespace ctsim::delaylib {

/// Timing of a branch-type component (all times ps, slews 10-90%).
struct BranchTiming {
    double buffer_delay_ps{0.0};  ///< driver input 50% -> driver output 50%
    double delay_left_ps{0.0};    ///< driver output 50% -> left end 50%
    double delay_right_ps{0.0};
    double slew_left_ps{0.0};     ///< slew at the left end
    double slew_right_ps{0.0};
};

class DelayModel {
  public:
    /// The model observes (does not own) the technology and the buffer
    /// library; both must outlive it. Passing temporaries dangles.
    DelayModel(const tech::Technology& tech, const tech::BufferLibrary& lib)
        : tech_(&tech), lib_(&lib), instance_id_(next_instance_id()) {}
    virtual ~DelayModel() = default;

    /// Process-unique id of this model instance. Caches key on it
    /// rather than on the address, which the allocator may recycle.
    std::uint64_t instance_id() const { return instance_id_; }

    DelayModel(const DelayModel&) = delete;
    DelayModel& operator=(const DelayModel&) = delete;

    /// Driver intrinsic delay: input 50% to output 50% crossing, for a
    /// driver of type `d` with input slew `slew_in`, driving a wire of
    /// `len` um terminated by load type `l`.
    virtual double buffer_delay(int d, int l, double slew_in, double len) const = 0;
    /// Wire delay: driver output 50% to wire end 50%.
    virtual double wire_delay(int d, int l, double slew_in, double len) const = 0;
    /// Slew at the wire end (= input slew of the next stage).
    virtual double wire_slew(int d, int l, double slew_in, double len) const = 0;

    /// Branch-type component (two branches, per Sec 3.2.2).
    virtual BranchTiming branch(int d, int l_left, int l_right, double slew_in, double stem,
                                double left, double right) const = 0;

    const tech::Technology& technology() const { return *tech_; }
    const tech::BufferLibrary& buffers() const { return *lib_; }

    double buffer_input_cap(int type) const { return lib_->type(type).input_cap_ff(*tech_); }

    /// Buffer type whose input capacitance is nearest `cap_ff` (the
    /// paper's sink-load approximation).
    int load_type_for_cap(double cap_ff) const;

    /// Convenience: full single-wire component traversal. Returns the
    /// delay from driver input 50% to wire end 50% and the end slew.
    struct StageTiming {
        double delay_ps{0.0};
        double end_slew_ps{0.0};
    };
    StageTiming stage(int d, int l, double slew_in, double len) const {
        return {buffer_delay(d, l, slew_in, len) + wire_delay(d, l, slew_in, len),
                wire_slew(d, l, slew_in, len)};
    }

  private:
    static std::uint64_t next_instance_id();

    const tech::Technology* tech_;
    const tech::BufferLibrary* lib_;
    std::uint64_t instance_id_{0};
};

}  // namespace ctsim::delaylib

#endif  // CTSIM_DELAYLIB_DELAY_MODEL_H
