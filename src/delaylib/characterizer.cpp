#include "delaylib/characterizer.h"

#include <cmath>
#include <stdexcept>

#include "circuit/rc_tree.h"

namespace ctsim::delaylib {

namespace {

int segments_for(double len_um) {
    return std::max(1, static_cast<int>(std::ceil(len_um / 50.0)));
}

}  // namespace

SweepGrid SweepGrid::quick() {
    SweepGrid g;
    // Every dimension keeps at least (degree + 1) distinct values for
    // the degrees used in tests (3 single / 2 branch).
    g.input_lens_um = {1.0, 800.0, 2000.0, 3500.0};
    g.wire_lens_um = {10.0, 800.0, 2000.0, 3200.0, 4500.0};
    g.branch_input_lens_um = {1.0, 1500.0, 3500.0};
    g.stem_lens_um = {10.0, 1200.0, 2600.0};
    g.branch_lens_um = {50.0, 1500.0, 3000.0};
    g.solver.dt_ps = 1.0;
    return g;
}

Characterizer::ShapedInput Characterizer::shape_input(int driver, double input_len_um,
                                                      const sim::SolverOptions& opt) const {
    const tech::BufferType& binput = lib_->type(driver);
    circuit::RcTree t;
    const int end = t.add_wire(0, input_len_um, tech_->wire_res_kohm_per_um,
                               tech_->wire_cap_ff_per_um, segments_for(input_len_um));
    t.add_cap(end, lib_->type(driver).input_cap_ff(*tech_));

    const sim::Waveform ramp = sim::Waveform::ramp(tech_->vdd, 60.0, 10.0, opt.dt_ps);
    const sim::StageResult r = sim::simulate_stage(t, &binput, ramp, {end}, *tech_, opt);
    if (!r.settled || !r.node_timing[end].slew() || !r.node_timing[end].t50)
        throw std::runtime_error("characterizer: input shaping did not settle");
    return ShapedInput{r.tap_waveforms[0], *r.node_timing[end].slew(), *r.node_timing[end].t50};
}

SingleWireSample Characterizer::measure_single(int driver, int load, double input_len_um,
                                               double wire_len_um,
                                               const sim::SolverOptions& opt) const {
    const ShapedInput in = shape_input(driver, input_len_um, opt);

    circuit::RcTree t;
    const int end = t.add_wire(0, wire_len_um, tech_->wire_res_kohm_per_um,
                               tech_->wire_cap_ff_per_um, segments_for(wire_len_um));
    t.add_cap(end, lib_->type(load).input_cap_ff(*tech_));

    const sim::StageResult r =
        sim::simulate_stage(t, &lib_->type(driver), in.wave, {}, *tech_, opt);
    if (!r.settled || !r.node_timing[0].t50 || !r.node_timing[end].t50 ||
        !r.node_timing[end].slew())
        throw std::runtime_error("characterizer: single-wire measurement did not settle");

    SingleWireSample s;
    s.input_slew_ps = in.slew_ps;
    s.wire_len_um = wire_len_um;
    s.buffer_delay_ps = *r.node_timing[0].t50 - in.t50_ps;
    s.wire_delay_ps = *r.node_timing[end].t50 - *r.node_timing[0].t50;
    s.wire_slew_ps = *r.node_timing[end].slew();
    return s;
}

BranchSample Characterizer::measure_branch(int driver, int load, double input_len_um,
                                           double stem_um, double left_um, double right_um,
                                           const sim::SolverOptions& opt) const {
    const ShapedInput in = shape_input(driver, input_len_um, opt);

    circuit::RcTree t;
    const int split = t.add_wire(0, stem_um, tech_->wire_res_kohm_per_um,
                                 tech_->wire_cap_ff_per_um, segments_for(stem_um));
    const int lend = t.add_wire(split, left_um, tech_->wire_res_kohm_per_um,
                                tech_->wire_cap_ff_per_um, segments_for(left_um));
    t.add_cap(lend, lib_->type(load).input_cap_ff(*tech_));
    const int rend = t.add_wire(split, right_um, tech_->wire_res_kohm_per_um,
                                tech_->wire_cap_ff_per_um, segments_for(right_um));
    t.add_cap(rend, lib_->type(load).input_cap_ff(*tech_));

    const sim::StageResult r =
        sim::simulate_stage(t, &lib_->type(driver), in.wave, {}, *tech_, opt);
    if (!r.settled || !r.node_timing[0].t50 || !r.node_timing[lend].t50 ||
        !r.node_timing[rend].t50)
        throw std::runtime_error("characterizer: branch measurement did not settle");

    BranchSample s;
    s.input_slew_ps = in.slew_ps;
    s.stem_len_um = stem_um;
    s.left_len_um = left_um;
    s.right_len_um = right_um;
    s.buffer_delay_ps = *r.node_timing[0].t50 - in.t50_ps;
    s.delay_left_ps = *r.node_timing[lend].t50 - *r.node_timing[0].t50;
    s.delay_right_ps = *r.node_timing[rend].t50 - *r.node_timing[0].t50;
    s.slew_left_ps = r.node_timing[lend].slew().value_or(0.0);
    s.slew_right_ps = r.node_timing[rend].slew().value_or(0.0);
    return s;
}

std::vector<SingleWireSample> Characterizer::sweep_single(int driver, int load,
                                                          const SweepGrid& grid) const {
    std::vector<SingleWireSample> out;
    out.reserve(grid.input_lens_um.size() * grid.wire_lens_um.size());
    for (double lin : grid.input_lens_um)
        for (double lw : grid.wire_lens_um)
            out.push_back(measure_single(driver, load, lin, lw, grid.solver));
    return out;
}

std::vector<BranchSample> Characterizer::sweep_branch(int driver, int load,
                                                      const SweepGrid& grid) const {
    std::vector<BranchSample> out;
    for (double lin : grid.branch_input_lens_um)
        for (double stem : grid.stem_lens_um)
            for (double ll : grid.branch_lens_um)
                for (double lr : grid.branch_lens_um)
                    out.push_back(measure_branch(driver, load, lin, stem, ll, lr, grid.solver));
    return out;
}

}  // namespace ctsim::delaylib
