#include "delaylib/delay_model.h"

#include <atomic>
#include <cmath>
#include <limits>

namespace ctsim::delaylib {

std::uint64_t DelayModel::next_instance_id() {
    static std::atomic<std::uint64_t> counter{0};
    return ++counter;
}

int DelayModel::load_type_for_cap(double cap_ff) const {
    int best = 0;
    double best_err = std::numeric_limits<double>::max();
    for (int t = 0; t < lib_->count(); ++t) {
        const double err = std::abs(lib_->type(t).input_cap_ff(*tech_) - cap_ff);
        if (err < best_err) {
            best_err = err;
            best = t;
        }
    }
    return best;
}

}  // namespace ctsim::delaylib
