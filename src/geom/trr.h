// Manhattan arcs and tilted rectangular regions (TRRs).
//
// The deferred-merge embedding (DME) baseline represents the locus of
// feasible merge-node positions as a Manhattan arc (a segment of slope
// +-1, possibly degenerate). A TRR is the set of points within
// Manhattan distance r of such an arc.
//
// We do all TRR arithmetic in 45-degree rotated coordinates
//     u = x + y,   v = x - y,
// where the L1 metric becomes L-infinity, Manhattan disks become
// squares, Manhattan arcs become axis-aligned segments and TRRs become
// axis-aligned rectangles. Intersections and distances then reduce to
// interval arithmetic.
#ifndef CTSIM_GEOM_TRR_H
#define CTSIM_GEOM_TRR_H

#include <optional>

#include "geom/point.h"

namespace ctsim::geom {

/// Point in rotated coordinates.
struct RotPt {
    double u{0.0};
    double v{0.0};
};

inline RotPt to_rotated(Pt p) { return {p.x + p.y, p.x - p.y}; }
inline Pt from_rotated(RotPt r) { return {(r.u + r.v) / 2.0, (r.u - r.v) / 2.0}; }

/// A tilted rectangular region, stored as an axis-aligned rectangle in
/// rotated coordinates. Degenerate rectangles (zero width and/or
/// height) represent Manhattan arcs and single points.
class Trr {
  public:
    Trr() = default;

    /// TRR consisting of a single point.
    static Trr point(Pt p) {
        const RotPt r = to_rotated(p);
        return Trr{r.u, r.u, r.v, r.v};
    }

    /// TRR that is the Manhattan arc between `a` and `b`. The endpoints
    /// must lie on a common line of slope +-1 (within `eps`); otherwise
    /// the bounding rotated rectangle is used, which is the standard
    /// conservative fallback.
    static Trr arc(Pt a, Pt b) {
        const RotPt ra = to_rotated(a);
        const RotPt rb = to_rotated(b);
        return Trr{std::min(ra.u, rb.u), std::max(ra.u, rb.u), std::min(ra.v, rb.v),
                   std::max(ra.v, rb.v)};
    }

    double ulo() const { return ulo_; }
    double uhi() const { return uhi_; }
    double vlo() const { return vlo_; }
    double vhi() const { return vhi_; }

    bool valid() const { return ulo_ <= uhi_ && vlo_ <= vhi_; }
    /// True when the region is a Manhattan arc (or point): degenerate
    /// in at least one rotated dimension.
    bool is_arc(double eps = 1e-9) const {
        return (uhi_ - ulo_) <= eps || (vhi_ - vlo_) <= eps;
    }
    bool is_point(double eps = 1e-9) const {
        return (uhi_ - ulo_) <= eps && (vhi_ - vlo_) <= eps;
    }

    /// Minkowski sum with a Manhattan disk of radius `r` (r >= 0).
    Trr inflated(double r) const { return Trr{ulo_ - r, uhi_ + r, vlo_ - r, vhi_ + r}; }

    /// The two arc endpoints in original coordinates. For a genuine arc
    /// these are its ends; for a non-degenerate rectangle they are two
    /// opposite corners (diagonal of the region).
    Pt arc_begin() const { return from_rotated({ulo_, vlo_}); }
    Pt arc_end() const { return from_rotated({uhi_, vhi_}); }

    /// Some representative point of the region (its rotated-space center).
    Pt center() const { return from_rotated({(ulo_ + uhi_) / 2.0, (vlo_ + vhi_) / 2.0}); }

    /// L1 distance from `p` to the region (0 when inside).
    double distance_to(Pt p) const;

    /// L1 distance between two regions (0 when they intersect).
    static double distance(const Trr& a, const Trr& b);

    /// Intersection; nullopt when the regions are disjoint.
    static std::optional<Trr> intersect(const Trr& a, const Trr& b);

    /// Point of the region closest (L1) to `p`; `p` itself when inside.
    Pt closest_point_to(Pt p) const;

  private:
    Trr(double ulo, double uhi, double vlo, double vhi)
        : ulo_(ulo), uhi_(uhi), vlo_(vlo), vhi_(vhi) {}

    double ulo_{0.0};
    double uhi_{0.0};
    double vlo_{0.0};
    double vhi_{0.0};
};

/// DME merge: given two child regions and balancing radii
/// (ra + rb >= distance(a, b)), the merge segment is the intersection
/// of the inflated regions. Returns nullopt when the radii are
/// insufficient to meet.
std::optional<Trr> merge_segment(const Trr& a, double ra, const Trr& b, double rb);

}  // namespace ctsim::geom

#endif  // CTSIM_GEOM_TRR_H
