#include "geom/trr.h"

#include <ostream>

namespace ctsim::geom {

std::ostream& operator<<(std::ostream& os, Pt p);

namespace {

/// Distance from scalar x to interval [lo, hi] (0 inside).
double interval_dist(double x, double lo, double hi) {
    if (x < lo) return lo - x;
    if (x > hi) return x - hi;
    return 0.0;
}

/// Distance between intervals [alo, ahi] and [blo, bhi] (0 when they overlap).
double interval_gap(double alo, double ahi, double blo, double bhi) {
    if (ahi < blo) return blo - ahi;
    if (bhi < alo) return alo - bhi;
    return 0.0;
}

double clamp_to(double x, double lo, double hi) { return std::min(std::max(x, lo), hi); }

}  // namespace

double Trr::distance_to(Pt p) const {
    const RotPt r = to_rotated(p);
    // L-infinity distance in rotated space equals L1 distance in the
    // original space.
    return std::max(interval_dist(r.u, ulo_, uhi_), interval_dist(r.v, vlo_, vhi_));
}

double Trr::distance(const Trr& a, const Trr& b) {
    return std::max(interval_gap(a.ulo_, a.uhi_, b.ulo_, b.uhi_),
                    interval_gap(a.vlo_, a.vhi_, b.vlo_, b.vhi_));
}

std::optional<Trr> Trr::intersect(const Trr& a, const Trr& b) {
    Trr r{std::max(a.ulo_, b.ulo_), std::min(a.uhi_, b.uhi_), std::max(a.vlo_, b.vlo_),
          std::min(a.vhi_, b.vhi_)};
    // Guard against floating-point underflow when the regions touch in
    // a single point: snap tiny negative extents to degenerate ones.
    constexpr double eps = 1e-7;
    if (r.uhi_ < r.ulo_ && r.ulo_ - r.uhi_ <= eps) r.uhi_ = r.ulo_ = (r.ulo_ + r.uhi_) / 2.0;
    if (r.vhi_ < r.vlo_ && r.vlo_ - r.vhi_ <= eps) r.vhi_ = r.vlo_ = (r.vlo_ + r.vhi_) / 2.0;
    if (!r.valid()) return std::nullopt;
    return r;
}

Pt Trr::closest_point_to(Pt p) const {
    const RotPt r = to_rotated(p);
    return from_rotated({clamp_to(r.u, ulo_, uhi_), clamp_to(r.v, vlo_, vhi_)});
}

std::optional<Trr> merge_segment(const Trr& a, double ra, const Trr& b, double rb) {
    return Trr::intersect(a.inflated(ra), b.inflated(rb));
}

}  // namespace ctsim::geom
