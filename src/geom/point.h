// Basic 2-D geometry in the Manhattan (L1) metric.
//
// All clock-tree geometry in this project is rectilinear: wire length
// between two points equals their L1 distance, and loci of equal
// distance are "Manhattan arcs" (segments of slope +-1). See trr.h for
// the tilted-rectangular-region machinery built on top of this file.
#ifndef CTSIM_GEOM_POINT_H
#define CTSIM_GEOM_POINT_H

#include <algorithm>
#include <cmath>
#include <iosfwd>

namespace ctsim::geom {

/// A point (or displacement) in the plane. Units are micrometres
/// throughout the project.
struct Pt {
    double x{0.0};
    double y{0.0};

    friend constexpr Pt operator+(Pt a, Pt b) { return {a.x + b.x, a.y + b.y}; }
    friend constexpr Pt operator-(Pt a, Pt b) { return {a.x - b.x, a.y - b.y}; }
    friend constexpr Pt operator*(double s, Pt p) { return {s * p.x, s * p.y}; }
    friend constexpr Pt operator*(Pt p, double s) { return {s * p.x, s * p.y}; }
    friend constexpr bool operator==(Pt a, Pt b) { return a.x == b.x && a.y == b.y; }
};

/// Manhattan (L1) distance; the wirelength of any shortest rectilinear
/// route between the two points.
inline double manhattan(Pt a, Pt b) { return std::abs(a.x - b.x) + std::abs(a.y - b.y); }

/// Euclidean distance (used only for reporting, never for wirelength).
inline double euclidean(Pt a, Pt b) { return std::hypot(a.x - b.x, a.y - b.y); }

/// Linear interpolation: t = 0 gives a, t = 1 gives b.
inline Pt lerp(Pt a, Pt b, double t) { return {a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)}; }

/// True when the points coincide within tolerance `eps` (L1).
inline bool almost_equal(Pt a, Pt b, double eps = 1e-9) { return manhattan(a, b) <= eps; }

std::ostream& operator<<(std::ostream& os, Pt p);

/// Axis-aligned bounding box.
struct BBox {
    double xlo{0.0};
    double ylo{0.0};
    double xhi{0.0};
    double yhi{0.0};

    static BBox of(Pt a, Pt b) {
        return {std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x), std::max(a.y, b.y)};
    }

    double width() const { return xhi - xlo; }
    double height() const { return yhi - ylo; }
    /// Longer dimension (the paper's `l` in the complexity analysis).
    double span() const { return std::max(width(), height()); }
    double half_perimeter() const { return width() + height(); }
    Pt center() const { return {(xlo + xhi) / 2.0, (ylo + yhi) / 2.0}; }

    bool contains(Pt p) const { return p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi; }

    /// Grow the box by `m` on every side.
    BBox inflated(double m) const { return {xlo - m, ylo - m, xhi + m, yhi + m}; }

    /// Smallest box containing both this box and `p`.
    void extend(Pt p) {
        xlo = std::min(xlo, p.x);
        ylo = std::min(ylo, p.y);
        xhi = std::max(xhi, p.x);
        yhi = std::max(yhi, p.y);
    }
};

/// Bounding box of a non-empty range of points.
template <typename Range>
BBox bounding_box(const Range& pts) {
    auto it = std::begin(pts);
    BBox box{it->x, it->y, it->x, it->y};
    for (const auto& p : pts) box.extend(p);
    return box;
}

}  // namespace ctsim::geom

#endif  // CTSIM_GEOM_POINT_H
