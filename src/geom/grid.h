// Routing-grid geometry for the maze router.
//
// The paper partitions the bounding region of the two nodes to be
// merged into routing grids; by default R = 45 grids per dimension of
// the bounding box, grown dynamically for long nets so that enough
// candidate buffer locations exist on any path (Sec 4.2.2).
#ifndef CTSIM_GEOM_GRID_H
#define CTSIM_GEOM_GRID_H

#include <cstdint>
#include <vector>

#include "geom/point.h"

namespace ctsim::geom {

/// Integer cell coordinate on a routing grid.
struct Cell {
    int ix{0};
    int iy{0};

    friend constexpr bool operator==(Cell a, Cell b) { return a.ix == b.ix && a.iy == b.iy; }
};

/// A uniform routing grid covering a rectangular region. Cell (0,0) is
/// the lower-left cell; cell centers are the candidate routing /
/// buffer-insertion locations.
class RoutingGrid {
  public:
    /// Build a grid over `region` with `nx` x `ny` cells (each >= 1).
    RoutingGrid(BBox region, int nx, int ny);

    /// Build a grid with the paper's sizing rule: `cells_per_dim`
    /// (default R = 45) cells along each dimension of the bounding box
    /// of `a` and `b` inflated by `margin`, but with the cell pitch
    /// clamped to at most `max_pitch` so long nets get proportionally
    /// more cells ("dynamically adjust the routing grid size").
    static RoutingGrid for_net(Pt a, Pt b, int cells_per_dim, double margin, double max_pitch);

    int nx() const { return nx_; }
    int ny() const { return ny_; }
    int cell_count() const { return nx_ * ny_; }
    double pitch_x() const { return pitch_x_; }
    double pitch_y() const { return pitch_y_; }
    const BBox& region() const { return region_; }

    bool in_bounds(Cell c) const { return c.ix >= 0 && c.ix < nx_ && c.iy >= 0 && c.iy < ny_; }

    int index(Cell c) const { return c.iy * nx_ + c.ix; }
    Cell cell_at_index(int idx) const { return {idx % nx_, idx / nx_}; }

    /// Center of a cell in chip coordinates.
    Pt center(Cell c) const {
        return {region_.xlo + (c.ix + 0.5) * pitch_x_, region_.ylo + (c.iy + 0.5) * pitch_y_};
    }

    /// The cell containing `p` (clamped to the grid).
    Cell cell_of(Pt p) const;

    /// Manhattan distance between two cell centers.
    double cell_distance(Cell a, Cell b) const {
        return std::abs(a.ix - b.ix) * pitch_x_ + std::abs(a.iy - b.iy) * pitch_y_;
    }

    /// The 4-neighbourhood of `c`, filtered to in-bounds cells.
    std::vector<Cell> neighbours(Cell c) const;

  private:
    BBox region_;
    int nx_{1};
    int ny_{1};
    double pitch_x_{1.0};
    double pitch_y_{1.0};
};

}  // namespace ctsim::geom

#endif  // CTSIM_GEOM_GRID_H
