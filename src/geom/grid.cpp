#include "geom/grid.h"

#include <cmath>

namespace ctsim::geom {

RoutingGrid::RoutingGrid(BBox region, int nx, int ny)
    : region_(region), nx_(std::max(1, nx)), ny_(std::max(1, ny)) {
    // Degenerate regions (the two nodes share a coordinate) still get a
    // usable one-cell-wide grid.
    const double w = std::max(region_.width(), 1e-6);
    const double h = std::max(region_.height(), 1e-6);
    region_.xhi = region_.xlo + w;
    region_.yhi = region_.ylo + h;
    pitch_x_ = w / nx_;
    pitch_y_ = h / ny_;
}

RoutingGrid RoutingGrid::for_net(Pt a, Pt b, int cells_per_dim, double margin, double max_pitch) {
    const BBox box = BBox::of(a, b).inflated(margin);
    int nx = cells_per_dim;
    int ny = cells_per_dim;
    // Dynamic growth: keep the pitch at or below max_pitch so that long
    // nets expose enough candidate buffer locations.
    if (max_pitch > 0.0) {
        nx = std::max(nx, static_cast<int>(std::ceil(box.width() / max_pitch)));
        ny = std::max(ny, static_cast<int>(std::ceil(box.height() / max_pitch)));
    }
    return RoutingGrid(box, nx, ny);
}

Cell RoutingGrid::cell_of(Pt p) const {
    int ix = static_cast<int>(std::floor((p.x - region_.xlo) / pitch_x_));
    int iy = static_cast<int>(std::floor((p.y - region_.ylo) / pitch_y_));
    ix = std::min(std::max(ix, 0), nx_ - 1);
    iy = std::min(std::max(iy, 0), ny_ - 1);
    return {ix, iy};
}

std::vector<Cell> RoutingGrid::neighbours(Cell c) const {
    std::vector<Cell> out;
    out.reserve(4);
    const Cell candidates[4] = {{c.ix + 1, c.iy}, {c.ix - 1, c.iy}, {c.ix, c.iy + 1},
                                {c.ix, c.iy - 1}};
    for (const Cell& n : candidates)
        if (in_bounds(n)) out.push_back(n);
    return out;
}

}  // namespace ctsim::geom
