#include "geom/point.h"

#include <ostream>

namespace ctsim::geom {

std::ostream& operator<<(std::ostream& os, Pt p) {
    return os << '(' << p.x << ", " << p.y << ')';
}

}  // namespace ctsim::geom
