#include "tech/buffer_lib.h"

#include <algorithm>
#include <cmath>

namespace ctsim::tech {

BufferType BufferType::make(const Technology& t, std::string name, double size) {
    BufferType b;
    b.name = std::move(name);
    b.size = size;
    const double s1 = std::max(1.0, size / 3.0);
    b.stage1 = InverterGeom{t.unit_nmos_width_um * s1, t.unit_nmos_width_um * t.beta_ratio * s1};
    b.stage2 = InverterGeom{t.unit_nmos_width_um * size,
                            t.unit_nmos_width_um * t.beta_ratio * size};
    return b;
}

double BufferType::output_res_kohm(const Technology& t) const {
    // Average the N and P effective resistances at full gate drive:
    // R_eff ~= (3/4) Vdd / Idsat, the classic switching-resistance
    // approximation.
    const MosCurrent in = mos_current(t.nmos, stage2.nmos_width_um, t.vdd, t.vdd);
    const MosCurrent ip = mos_current(t.pmos, stage2.pmos_width_um, t.vdd, t.vdd);
    const double rn = 0.75 * t.vdd / std::max(in.id, 1e-9);
    const double rp = 0.75 * t.vdd / std::max(ip.id, 1e-9);
    return 0.5 * (rn + rp);
}

BufferLibrary BufferLibrary::standard_three(const Technology& t) {
    return of_sizes(t, {10.0, 20.0, 30.0});
}

BufferLibrary BufferLibrary::single(const Technology& t, double size) {
    return of_sizes(t, {size});
}

BufferLibrary BufferLibrary::of_sizes(const Technology& t, const std::vector<double>& sizes) {
    std::vector<double> sorted = sizes;
    std::sort(sorted.begin(), sorted.end());
    std::vector<BufferType> types;
    types.reserve(sorted.size());
    for (double s : sorted) {
        const int rounded = static_cast<int>(std::lround(s));
        types.push_back(BufferType::make(t, "BUF" + std::to_string(rounded) + "X", s));
    }
    return BufferLibrary(std::move(types));
}

}  // namespace ctsim::tech
