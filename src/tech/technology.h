// Technology parameters: the 45 nm PTM substitute.
//
// The paper characterizes buffers "defined in transistor level using
// SPICE" with 45 nm PTM models, and wires with unit resistance
// 0.03 Ohm/um and unit capacitance 0.2 fF/um (deliberately 10x the
// GSRC benchmark values to stress slew). PTM model cards are not
// redistributable here, so we provide an alpha-power-law MOSFET model
// (Sakurai-Newton) with magnitudes calibrated to a 45 nm-like process:
// Vdd 1.0 V, ~1 mA/um NMOS on-current, ~1 fF/um gate capacitance.
// The transient simulator (src/sim) evaluates these devices directly.
//
// Internal unit system (consistent, no hidden conversion factors):
//   time ps, capacitance fF, resistance kOhm, current mA, voltage V.
//   kOhm * fF = ps and mA = fF * V / ps, so RC and C dV/dt work out.
#ifndef CTSIM_TECH_TECHNOLOGY_H
#define CTSIM_TECH_TECHNOLOGY_H

namespace ctsim::tech {

/// Alpha-power-law MOSFET parameters, per micrometre of gate width.
struct MosParams {
    double vt{0.4};             ///< threshold voltage [V]
    double alpha{1.3};          ///< velocity-saturation index
    double k_ma_per_um{1.75};   ///< Id_sat = k * W * (Vgs - Vt)^alpha [mA]
    double vdsat_coef{0.42};    ///< Vd_sat = coef * (Vgs - Vt)^(alpha/2) [V]
    double lambda{0.05};        ///< channel-length modulation [1/V]
    double cgate_ff_per_um{1.0};   ///< gate capacitance [fF/um width]
    double cdrain_ff_per_um{0.5};  ///< drain junction capacitance [fF/um width]
};

/// Drain current of a single device and its partial derivatives,
/// evaluated with source grounded (NMOS convention). PMOS devices are
/// evaluated through the same function with mirrored terminal voltages.
struct MosCurrent {
    double id{0.0};        ///< drain->source current [mA]
    double did_dvgs{0.0};  ///< [mA/V]
    double did_dvds{0.0};  ///< [mA/V]
};

MosCurrent mos_current(const MosParams& p, double width_um, double vgs, double vds);

/// Full process + interconnect description.
struct Technology {
    double vdd{1.0};  ///< supply voltage [V]

    MosParams nmos{};
    MosParams pmos{};

    /// Unit wire parasitics. The paper's experimental setting uses the
    /// "10x" values (0.03 Ohm/um, 0.2 fF/um).
    double wire_res_kohm_per_um{0.03e-3};
    double wire_cap_ff_per_um{0.2};

    /// Inverter P/N width ratio (beta ratio) used when deriving buffer
    /// transistor widths from a drive-strength multiple.
    double beta_ratio{2.0};
    /// NMOS width of a 1X inverter [um].
    double unit_nmos_width_um{0.5};

    double wire_res_kohm(double length_um) const { return wire_res_kohm_per_um * length_um; }
    double wire_cap_ff(double length_um) const { return wire_cap_ff_per_um * length_um; }

    /// The paper's experimental technology: 45 nm-like devices with
    /// 10x-scaled wire parasitics.
    static Technology ptm45_aggressive();
    /// Same devices with the original (1x) GSRC wire parasitics;
    /// used by ablation benches to show why the 10x setting matters.
    static Technology ptm45_nominal();
};

}  // namespace ctsim::tech

#endif  // CTSIM_TECH_TECHNOLOGY_H
