#include "tech/technology.h"

#include <algorithm>
#include <cmath>

namespace ctsim::tech {

MosCurrent mos_current(const MosParams& p, double width_um, double vgs, double vds) {
    MosCurrent out;
    // Reverse conduction (vds < 0) is handled by antisymmetry; in a
    // correctly biased inverter it only occurs transiently for tiny
    // overshoots, but the solver must stay consistent there.
    double sign = 1.0;
    if (vds < 0.0) {
        sign = -1.0;
        vds = -vds;
    }
    const double vov = vgs - p.vt;
    if (vov <= 0.0) return out;  // cut-off: gmin elsewhere keeps Newton regular

    const double idsat0 = p.k_ma_per_um * width_um * std::pow(vov, p.alpha);
    const double didsat0_dvgs = p.k_ma_per_um * width_um * p.alpha * std::pow(vov, p.alpha - 1.0);
    const double vdsat = p.vdsat_coef * std::pow(vov, p.alpha / 2.0);
    const double dvdsat_dvgs = p.vdsat_coef * (p.alpha / 2.0) * std::pow(vov, p.alpha / 2.0 - 1.0);

    const double clm = 1.0 + p.lambda * vds;  // channel-length modulation
    if (vds >= vdsat) {
        out.id = idsat0 * clm;
        out.did_dvds = idsat0 * p.lambda;
        out.did_dvgs = didsat0_dvgs * clm;
    } else {
        // Quadratic triode interpolation: matches value and slope of the
        // saturation branch at vds = vdsat.
        const double x = vds / vdsat;
        const double shape = x * (2.0 - x);
        out.id = idsat0 * shape * clm;
        out.did_dvds = idsat0 * ((2.0 - 2.0 * x) / vdsat * clm + shape * p.lambda);
        // d(shape)/dvgs via dx/dvgs = -x/vdsat * dvdsat/dvgs.
        const double dx_dvgs = -(x / vdsat) * dvdsat_dvgs;
        out.did_dvgs = (didsat0_dvgs * shape + idsat0 * (2.0 - 2.0 * x) * dx_dvgs) * clm;
    }
    out.id *= sign;
    out.did_dvgs *= sign;
    // did_dvds stays positive under antisymmetry: d(-I(-v))/dv = I'(-v).
    return out;
}

Technology Technology::ptm45_aggressive() {
    Technology t;
    t.vdd = 1.0;
    t.nmos = MosParams{0.40, 1.3, 1.75, 0.42, 0.05, 1.0, 0.5};
    t.pmos = MosParams{0.40, 1.35, 0.90, 0.50, 0.05, 1.0, 0.5};
    t.wire_res_kohm_per_um = 0.03e-3;  // 0.03 Ohm/um (the 10x setting)
    t.wire_cap_ff_per_um = 0.2;        // 0.2 fF/um (the 10x setting)
    return t;
}

Technology Technology::ptm45_nominal() {
    Technology t = ptm45_aggressive();
    t.wire_res_kohm_per_um = 0.003e-3;
    t.wire_cap_ff_per_um = 0.02;
    return t;
}

}  // namespace ctsim::tech
