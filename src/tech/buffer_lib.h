// Clock buffer library.
//
// Each buffer is two cascaded inverters (Sec 3.2: "Each buffer is
// characterized as two cascaded inverters in a SPICE netlist").
// Different drive strengths come from different transistor widths.
// The CTS experiments use a library of three buffers; Fig 1.1 uses
// 20X and 30X devices, so the default library is {10X, 20X, 30X}.
#ifndef CTSIM_TECH_BUFFER_LIB_H
#define CTSIM_TECH_BUFFER_LIB_H

#include <string>
#include <vector>

#include "tech/technology.h"

namespace ctsim::tech {

/// One inverter stage: transistor widths derived from a drive multiple.
struct InverterGeom {
    double nmos_width_um{0.5};
    double pmos_width_um{1.0};

    double input_cap_ff(const Technology& t) const {
        return nmos_width_um * t.nmos.cgate_ff_per_um + pmos_width_um * t.pmos.cgate_ff_per_um;
    }
    double drain_cap_ff(const Technology& t) const {
        return nmos_width_um * t.nmos.cdrain_ff_per_um + pmos_width_um * t.pmos.cdrain_ff_per_um;
    }
};

/// A buffer type: drive size (in 1X-inverter multiples) plus the
/// derived two-stage geometry. The first stage is sized size/3 (at
/// least 1X) so the buffer presents a small input load while the
/// second stage provides the full drive.
struct BufferType {
    std::string name;
    double size{1.0};
    InverterGeom stage1;
    InverterGeom stage2;

    static BufferType make(const Technology& t, std::string name, double size);

    double input_cap_ff(const Technology& t) const { return stage1.input_cap_ff(t); }
    /// Cap at the internal node between the stages.
    double internal_cap_ff(const Technology& t) const {
        return stage1.drain_cap_ff(t) + stage2.input_cap_ff(t);
    }
    double output_cap_ff(const Technology& t) const { return stage2.drain_cap_ff(t); }

    /// First-order effective switching resistance of the output stage
    /// [kOhm]; used by analytic models and by router estimates, never
    /// by the transient simulator (which evaluates the devices).
    double output_res_kohm(const Technology& t) const;
};

/// An ordered set of buffer types (ascending size). Index into this
/// vector is the "buffer type id" used throughout the CTS code.
class BufferLibrary {
  public:
    BufferLibrary() = default;
    explicit BufferLibrary(std::vector<BufferType> types) : types_(std::move(types)) {}

    /// The paper's 3-buffer experimental library: {10X, 20X, 30X}.
    static BufferLibrary standard_three(const Technology& t);
    /// Single-type library (ablation: is sizing freedom needed?).
    static BufferLibrary single(const Technology& t, double size);
    /// Arbitrary size list.
    static BufferLibrary of_sizes(const Technology& t, const std::vector<double>& sizes);

    int count() const { return static_cast<int>(types_.size()); }
    const BufferType& type(int id) const { return types_.at(id); }
    const std::vector<BufferType>& types() const { return types_; }

    int largest() const { return count() - 1; }
    int smallest() const { return 0; }

  private:
    std::vector<BufferType> types_;
};

}  // namespace ctsim::tech

#endif  // CTSIM_TECH_BUFFER_LIB_H
