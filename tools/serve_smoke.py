#!/usr/bin/env python3
"""Serve smoke: pipe a mixed request batch through ctsimd over stdin
and verify every line of the response stream.

The batch is the daemon's whole protocol surface in one session: N
synthesize requests of mixed size (some with quality passes toggled
off), one malformed line (must produce a typed invalid_input error
WITHOUT killing the session), one `stats` probe mid-stream, and a
final `shutdown` whose embedded stats must account for every request:
served_ok == N, malformed == 1, failed == rejected == 0.

Exit 0 on a fully-accounted session, 1 on any missing/implausible
response, 2 on usage errors. CI runs this against the sanitizer
builds, so a leak or race anywhere on the serving path fails here.

usage: serve_smoke.py <path-to-ctsimd> [n_requests] [workers]
"""

import json
import subprocess
import sys


def sink_count(i):
    return 40 + 12 * (i % 5)


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    daemon = sys.argv[1]
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    workers = sys.argv[3] if len(sys.argv) > 3 else "2"

    lines = []
    for i in range(n):
        req = {"id": i, "synthetic": {"sinks": sink_count(i),
                                      "span_um": 6000.0, "seed": i + 1}}
        if i % 3 == 1:
            req["options"] = {"skew_refine": False}
        if i % 3 == 2:
            req["options"] = {"wire_reclaim": False}
        lines.append(json.dumps(req))
    lines.append("this is not json")
    lines.append(json.dumps({"id": "s", "type": "stats"}))
    lines.append(json.dumps({"id": "bye", "type": "shutdown"}))

    proc = subprocess.run([daemon, "--fit-quick", "--workers", workers],
                          input="\n".join(lines) + "\n",
                          capture_output=True, text=True, timeout=900)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print(f"error: ctsimd exited {proc.returncode}")
        return 1

    responses = [json.loads(l) for l in proc.stdout.splitlines() if l.strip()]
    by_id = {json.dumps(r.get("id")): r for r in responses}
    failures = []

    if len(responses) != n + 3:
        failures.append(f"expected {n + 3} response lines, got {len(responses)}")
    for i in range(n):
        r = by_id.get(str(i))
        if r is None:
            failures.append(f"request {i}: no response")
        elif not r.get("ok"):
            failures.append(f"request {i}: {r.get('error')}")
        elif (r["result"]["nodes"] <= 0
              or r["result"]["sinks"] != sink_count(i)):
            failures.append(f"request {i}: implausible result {r['result']}")

    bad = [r for r in responses if not r.get("ok")]
    if (len(bad) != 1
            or bad[0].get("error", {}).get("code") != "invalid_input"):
        failures.append("expected exactly one invalid_input error for the "
                        f"malformed line, got {bad}")

    probe = by_id.get('"s"')
    if probe is None or not probe.get("ok") or "stats" not in probe:
        failures.append(f"stats probe failed: {probe}")

    bye = by_id.get('"bye"')
    if bye is None or not bye.get("ok") or not bye.get("shutdown"):
        failures.append(f"shutdown response failed: {bye}")
    else:
        s = bye["stats"]
        for key, want in (("served_ok", n), ("malformed", 1),
                          ("failed", 0), ("rejected", 0)):
            if s.get(key) != want:
                failures.append(f"final stats {key}: want {want}, "
                                f"got {s.get(key)}")
        print(f"serve smoke: {s.get('served_ok')} served on "
              f"{s.get('workers')} workers, p50 {s.get('p50_ms', 0):.1f} ms, "
              f"p99 {s.get('p99_ms', 0):.1f} ms, "
              f"peak RSS {s.get('peak_rss_mb', 0):.1f} MB")

    if failures:
        print(f"SERVE SMOKE FAILED ({len(failures)}):")
        for f in failures:
            print("  " + f)
        return 1
    print(f"serve smoke OK: {n} mixed requests + malformed + stats + "
          f"shutdown all accounted for")
    return 0


if __name__ == "__main__":
    sys.exit(main())
