"""Tests for tools/check_bench_regression.py -- the perf/quality gate
every merge runs through, which was itself untested until PR 5.

Runs the script as a subprocess (it is a CLI; its exit code IS its
contract): 0 = within thresholds, 1 = regression, 2 = usage/input
error. Written for pytest (registered in ctest when pytest is
available); the __main__ fallback runs the same test functions under
plain python3 so the suite still gates in pytest-less environments.
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench_regression.py")


def make_instance(name, seed_s=1.0, mode_s=0.2, wirelength=1000.0, skew=2.0,
                  modes=("opt", "refine"), rss_mb=100.0):
    inst = {"name": name,
            "seed": {"seconds": seed_s, "wirelength_um": wirelength, "skew_ps": 8.0}}
    for m in modes:
        inst[m] = {"seconds": mode_s, "wirelength_um": wirelength, "skew_ps": skew}
    if rss_mb is not None:
        inst["peak_rss_mb"] = rss_mb
    return inst


def run_guard(fresh_doc, baseline_doc, raw_fresh=None):
    with tempfile.TemporaryDirectory() as td:
        fresh = os.path.join(td, "fresh.json")
        base = os.path.join(td, "baseline.json")
        with open(fresh, "w") as f:
            f.write(raw_fresh if raw_fresh is not None else json.dumps(fresh_doc))
        with open(base, "w") as f:
            json.dump(baseline_doc, f)
        proc = subprocess.run([sys.executable, SCRIPT, fresh, base],
                              capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


def test_identical_runs_pass():
    doc = {"instances": [make_instance("a"), make_instance("b")]}
    rc, out = run_guard(doc, doc)
    assert rc == 0, out
    assert "perf guard OK" in out


def test_wall_clock_regression_fails_beyond_15_percent():
    base = {"instances": [make_instance("a", seed_s=1.0, mode_s=0.2)]}
    # Normalized time 0.2 -> 0.24 (+20% > 15%) on a mode above the
    # per-instance floor.
    fresh = {"instances": [make_instance("a", seed_s=1.0, mode_s=0.24)]}
    rc, out = run_guard(fresh, base)
    assert rc == 1, out
    assert "wall-clock" in out


def test_wall_clock_within_15_percent_passes():
    base = {"instances": [make_instance("a", seed_s=1.0, mode_s=0.2)]}
    fresh = {"instances": [make_instance("a", seed_s=1.0, mode_s=0.22)]}  # +10%
    rc, out = run_guard(fresh, base)
    assert rc == 0, out


def test_machine_speed_is_normalized_out():
    base = {"instances": [make_instance("a", seed_s=1.0, mode_s=0.2)]}
    # A machine 2x slower across the board must not trip the guard.
    fresh = {"instances": [make_instance("a", seed_s=2.0, mode_s=0.4)]}
    rc, out = run_guard(fresh, base)
    assert rc == 0, out


def test_wirelength_regression_fails_beyond_3_percent():
    base = {"instances": [make_instance("a", wirelength=1000.0)]}
    fresh = {"instances": [make_instance("a", wirelength=1040.0)]}  # +4% > 3%
    rc, out = run_guard(fresh, base)
    assert rc == 1, out
    assert "wirelength" in out


def test_refine_skew_gate_fails_beyond_one_picosecond():
    base = {"instances": [make_instance("a", skew=2.0)]}
    fresh = {"instances": [make_instance("a", skew=3.5)]}  # +1.5 ps > 1 ps
    rc, out = run_guard(fresh, base)
    assert rc == 1, out
    assert "skew" in out


def test_reclaim_mode_skew_is_gated_too():
    base = {"instances": [make_instance("a", modes=("reclaim",), skew=2.0)]}
    fresh = {"instances": [make_instance("a", modes=("reclaim",), skew=3.5)]}
    rc, out = run_guard(fresh, base)
    assert rc == 1, out
    assert "skew" in out


def test_non_refine_modes_skew_is_not_gated():
    base = {"instances": [make_instance("a", modes=("opt",), skew=2.0)]}
    fresh = {"instances": [make_instance("a", modes=("opt",), skew=9.0)]}
    rc, out = run_guard(fresh, base)
    assert rc == 0, out  # decision-chaotic modes stay ungated


def test_missing_instances_and_modes_are_skipped_not_failed():
    base = {"instances": [make_instance("a"), make_instance("gone")]}
    fresh = {"instances": [make_instance("a")]}
    rc, out = run_guard(fresh, base)
    assert rc == 0, out
    assert "skipped" in out


def test_missing_wirelength_column_is_flagged_not_fatal():
    # A degraded harness run (deadline hit mid-reclaim) can emit a
    # reclaim record without the wirelength column; the gate must warn
    # and keep checking the other metrics instead of crashing.
    base = {"instances": [make_instance("a", modes=("opt", "reclaim"))]}
    fresh = {"instances": [make_instance("a", modes=("opt", "reclaim"))]}
    del fresh["instances"][0]["reclaim"]["wirelength_um"]
    rc, out = run_guard(fresh, base)
    assert rc == 0, out
    assert "missing wirelength_um in fresh" in out
    assert "Traceback" not in out


def test_missing_column_does_not_mask_other_regressions():
    base = {"instances": [make_instance("a", modes=("opt", "reclaim"),
                                        wirelength=1000.0)]}
    fresh = {"instances": [make_instance("a", modes=("opt", "reclaim"),
                                         wirelength=1040.0)]}  # opt regresses
    del fresh["instances"][0]["reclaim"]["wirelength_um"]
    rc, out = run_guard(fresh, base)
    assert rc == 1, out
    assert "a/opt: wirelength" in out
    assert "missing wirelength_um" in out


def test_missing_seconds_column_is_flagged_not_fatal():
    base = {"instances": [make_instance("a", modes=("opt",))]}
    fresh = {"instances": [make_instance("a", modes=("opt",))]}
    del fresh["instances"][0]["opt"]["seconds"]
    rc, out = run_guard(fresh, base)
    assert rc == 0, out
    assert "missing seconds in fresh" in out
    assert "Traceback" not in out


def test_peak_rss_regression_fails_beyond_25_percent():
    base = {"instances": [make_instance("a", rss_mb=100.0)]}
    fresh = {"instances": [make_instance("a", rss_mb=130.0)]}  # +30% > 25%
    rc, out = run_guard(fresh, base)
    assert rc == 1, out
    assert "peak RSS" in out


def test_peak_rss_within_25_percent_passes():
    base = {"instances": [make_instance("a", rss_mb=100.0)]}
    fresh = {"instances": [make_instance("a", rss_mb=120.0)]}  # +20%
    rc, out = run_guard(fresh, base)
    assert rc == 0, out


def test_old_baseline_without_rss_column_is_tolerated_and_flagged():
    # Baselines committed before the peak_rss_mb column existed must
    # not break the gate -- the skip is announced, never silent, and
    # the other metrics keep being checked.
    base = {"instances": [make_instance("a", rss_mb=None)]}
    fresh = {"instances": [make_instance("a", rss_mb=500.0)]}
    rc, out = run_guard(fresh, base)
    assert rc == 0, out
    assert "no peak_rss_mb column" in out
    assert "RSS check skipped" in out
    assert "Traceback" not in out


def test_old_baseline_without_rss_does_not_mask_other_regressions():
    base = {"instances": [make_instance("a", rss_mb=None, wirelength=1000.0)]}
    fresh = {"instances": [make_instance("a", rss_mb=500.0, wirelength=1040.0)]}
    rc, out = run_guard(fresh, base)
    assert rc == 1, out
    assert "wirelength" in out
    assert "RSS check skipped" in out


def test_empty_but_wellformed_document_is_a_usage_error():
    # An interrupted harness or renamed instances must not produce a
    # green gate with zero checks.
    base = {"instances": [make_instance("a")]}
    rc, out = run_guard({}, base)
    assert rc == 2, out
    assert "no comparable" in out


def test_malformed_json_is_a_usage_error():
    base = {"instances": [make_instance("a")]}
    rc, out = run_guard(None, base, raw_fresh="{not json")
    assert rc == 2, out


# --- serve harness gate (optional second argument pair) ---------------------

def make_serve(worker_rps, failed=0, rejected=0, identical=True):
    return {"benchmark": "ctsim_serve", "nproc": 4,
            "workers": [{"workers": w, "requests_per_s": rps,
                         "p50_ms": 10.0, "p99_ms": 20.0,
                         "served_ok": 48, "failed": failed,
                         "rejected": rejected, "degraded": 0}
                        for w, rps in worker_rps],
            "all_identical": identical}


def run_guard_with_serve(serve_fresh, serve_base, raw_serve_base=None,
                         serve_base_missing=False):
    doc = {"instances": [make_instance("a")]}
    with tempfile.TemporaryDirectory() as td:
        paths = {n: os.path.join(td, n + ".json")
                 for n in ("fresh", "base", "sfresh", "sbase")}
        with open(paths["fresh"], "w") as f:
            json.dump(doc, f)
        with open(paths["base"], "w") as f:
            json.dump(doc, f)
        with open(paths["sfresh"], "w") as f:
            json.dump(serve_fresh, f)
        if not serve_base_missing:
            with open(paths["sbase"], "w") as f:
                f.write(raw_serve_base if raw_serve_base is not None
                        else json.dumps(serve_base))
        proc = subprocess.run(
            [sys.executable, SCRIPT, paths["fresh"], paths["base"],
             paths["sfresh"], paths["sbase"]],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


def test_serve_identical_runs_pass():
    doc = make_serve([(1, 10.0), (2, 18.0), (4, 32.0)])
    rc, out = run_guard_with_serve(doc, doc)
    assert rc == 0, out


def test_serve_missing_baseline_is_noted_and_skipped():
    # The PR that introduces the serve harness has no committed
    # baseline yet; the guard must flag the skip, not crash or fail.
    fresh = make_serve([(1, 10.0), (2, 18.0)])
    rc, out = run_guard_with_serve(fresh, None, serve_base_missing=True)
    assert rc == 0, out
    assert "serve baseline unusable" in out
    assert "Traceback" not in out


def test_serve_empty_baseline_is_noted_and_skipped():
    fresh = make_serve([(1, 10.0), (2, 18.0)])
    rc, out = run_guard_with_serve(fresh, {})
    assert rc == 0, out
    assert "serve baseline unusable" in out


def test_serve_malformed_baseline_is_noted_and_skipped():
    fresh = make_serve([(1, 10.0), (2, 18.0)])
    rc, out = run_guard_with_serve(fresh, None, raw_serve_base="{not json")
    assert rc == 0, out
    assert "serve baseline unusable" in out
    assert "Traceback" not in out


def test_serve_fresh_failures_fail_even_without_baseline():
    fresh = make_serve([(1, 10.0), (2, 18.0)], failed=2)
    rc, out = run_guard_with_serve(fresh, None, serve_base_missing=True)
    assert rc == 1, out
    assert "failed" in out


def test_serve_fresh_rejections_fail():
    fresh = make_serve([(1, 10.0), (2, 18.0)], rejected=1)
    rc, out = run_guard_with_serve(fresh, fresh)
    assert rc == 1, out
    assert "rejected" in out


def test_serve_identity_violation_fails():
    fresh = make_serve([(1, 10.0), (2, 18.0)], identical=False)
    rc, out = run_guard_with_serve(fresh, fresh)
    assert rc == 1, out
    assert "bit-identical" in out


def test_serve_scaling_regression_fails():
    base = make_serve([(1, 10.0), (4, 32.0)])   # 3.2x at 4 workers
    fresh = make_serve([(1, 10.0), (4, 25.0)])  # 2.5x: -22% > 15%
    rc, out = run_guard_with_serve(fresh, base)
    assert rc == 1, out
    assert "scaling" in out


def test_serve_scaling_is_normalized_against_machine_speed():
    base = make_serve([(1, 10.0), (4, 32.0)])
    # A 2x slower machine with the same scaling SHAPE must pass.
    fresh = make_serve([(1, 5.0), (4, 16.0)])
    rc, out = run_guard_with_serve(fresh, base)
    assert rc == 0, out


def test_serve_mismatched_worker_counts_are_skipped():
    # Baseline from an 8-core box, fresh from a 4-core box: the
    # 8-worker row has no counterpart and must be skipped, not failed.
    base = make_serve([(1, 10.0), (8, 60.0)])
    fresh = make_serve([(1, 10.0), (4, 32.0)])
    rc, out = run_guard_with_serve(fresh, base)
    assert rc == 0, out
    assert "skipped" in out


def test_serve_malformed_fresh_is_a_usage_error():
    rc, out = run_guard_with_serve(None, make_serve([(1, 10.0)]))
    assert rc == 2, out
    assert "cannot load fresh serve" in out
    assert "cannot load" in out


# --- scenario harness gate (optional third argument pair) -------------------

def make_scenario(cost_ratio=2.0, yield_at=0.8, identical=True,
                  instance="scal_n800", samples=64):
    return {"benchmark": "ctsim_scenario", "instance": instance,
            "sinks": 800, "samples": samples,
            "nominal_wall_s": 0.1, "mc_wall_s": 0.1 * cost_ratio,
            "mc_cost_ratio": cost_ratio,
            "samples_per_s": samples / (0.1 * cost_ratio),
            "skew_target_ps": 10.0, "yield_at_target": yield_at,
            "nominal_skew_ps": 3.0, "threads_identical": identical,
            "pareto_points": 6, "frontier_points": 2,
            "frontier_skew_extent_ps": 0.5, "frontier_wire_extent_um": 100.0}


def run_guard_with_scenario(sc_fresh, sc_base, raw_sc_base=None,
                            sc_base_missing=False):
    doc = {"instances": [make_instance("a")]}
    serve = make_serve([(1, 10.0), (2, 18.0)])
    with tempfile.TemporaryDirectory() as td:
        paths = {n: os.path.join(td, n + ".json")
                 for n in ("fresh", "base", "sfresh", "sbase", "cfresh", "cbase")}
        for name, payload in (("fresh", doc), ("base", doc),
                              ("sfresh", serve), ("sbase", serve)):
            with open(paths[name], "w") as f:
                json.dump(payload, f)
        with open(paths["cfresh"], "w") as f:
            json.dump(sc_fresh, f)
        if not sc_base_missing:
            with open(paths["cbase"], "w") as f:
                f.write(raw_sc_base if raw_sc_base is not None
                        else json.dumps(sc_base))
        proc = subprocess.run(
            [sys.executable, SCRIPT, paths["fresh"], paths["base"],
             paths["sfresh"], paths["sbase"], paths["cfresh"], paths["cbase"]],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


def test_scenario_identical_runs_pass():
    doc = make_scenario()
    rc, out = run_guard_with_scenario(doc, doc)
    assert rc == 0, out


def test_scenario_missing_baseline_is_noted_and_skipped():
    # The PR that introduces the scenario harness has no committed
    # baseline yet; the guard must flag the skip, not crash or fail.
    rc, out = run_guard_with_scenario(make_scenario(), None,
                                      sc_base_missing=True)
    assert rc == 0, out
    assert "scenario baseline unusable" in out
    assert "Traceback" not in out


def test_scenario_malformed_baseline_is_noted_and_skipped():
    rc, out = run_guard_with_scenario(make_scenario(), None,
                                      raw_sc_base="{not json")
    assert rc == 0, out
    assert "scenario baseline unusable" in out
    assert "Traceback" not in out


def test_scenario_identity_violation_fails_even_without_baseline():
    rc, out = run_guard_with_scenario(make_scenario(identical=False), None,
                                      sc_base_missing=True)
    assert rc == 1, out
    assert "bit-identical" in out


def test_scenario_cost_ceiling_fails_even_without_baseline():
    # The < 3x contract is absolute, not a trend vs baseline.
    rc, out = run_guard_with_scenario(make_scenario(cost_ratio=3.4), None,
                                      sc_base_missing=True)
    assert rc == 1, out
    assert "mc_cost_ratio" in out


def test_scenario_yield_regression_fails():
    base = make_scenario(yield_at=0.85)
    fresh = make_scenario(yield_at=0.80)
    rc, out = run_guard_with_scenario(fresh, base)
    assert rc == 1, out
    assert "yield" in out


def test_scenario_yield_improvement_passes():
    base = make_scenario(yield_at=0.80)
    fresh = make_scenario(yield_at=0.85)
    rc, out = run_guard_with_scenario(fresh, base)
    assert rc == 0, out


def test_scenario_cost_ratio_regression_fails_beyond_15_percent():
    base = make_scenario(cost_ratio=2.0)
    fresh = make_scenario(cost_ratio=2.4)  # +20% > 15%, still < 3x ceiling
    rc, out = run_guard_with_scenario(fresh, base)
    assert rc == 1, out
    assert "mc_cost_ratio" in out


def test_scenario_cost_ratio_within_15_percent_passes():
    base = make_scenario(cost_ratio=2.0)
    fresh = make_scenario(cost_ratio=2.2)  # +10%
    rc, out = run_guard_with_scenario(fresh, base)
    assert rc == 0, out


def test_scenario_quick_fresh_vs_full_baseline_is_skipped():
    # A quick (CI smoke) fresh run is a different instance/sample
    # count; the trend gate must skip it with a note, not compare.
    base = make_scenario(instance="scal_n800", samples=64, yield_at=0.99)
    fresh = make_scenario(instance="scal_n200", samples=16, yield_at=0.50)
    rc, out = run_guard_with_scenario(fresh, base)
    assert rc == 0, out
    assert "not comparable" in out


def test_scenario_malformed_fresh_is_a_usage_error():
    rc, out = run_guard_with_scenario(None, make_scenario())
    assert rc == 2, out
    assert "cannot load fresh scenario" in out


if __name__ == "__main__":
    failures = 0
    for name, fn in sorted(globals().items()):
        if name.startswith("test_") and callable(fn):
            try:
                fn()
                print(f"PASS {name}")
            except AssertionError as exc:
                failures += 1
                print(f"FAIL {name}: {exc}")
    sys.exit(1 if failures else 0)
