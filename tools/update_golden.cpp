// Regenerates the golden-report snapshots under tests/golden/ (the
// `--update-golden` tool of the regression suite). Prints old vs new
// so a quality diff is visible before it is committed.
//
//   build/update_golden [--update-golden] [--dir <golden-dir>]
//
// Without --update-golden it runs in dry-run mode: measures, prints
// the diff and exits 1 if anything drifted, writing nothing.
#include <cstdio>
#include <cstring>
#include <string>

#include "tests/golden_common.h"

int main(int argc, char** argv) {
    using namespace ctsim::testutil;
    bool write = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--update-golden") == 0) {
            write = true;
        } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
            setenv("CTSIM_GOLDEN_DIR", argv[++i], 1);
        } else {
            std::fprintf(stderr, "usage: %s [--update-golden] [--dir <golden-dir>]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("golden dir: %s%s\n", golden_dir().c_str(),
                write ? "" : "  (dry run; pass --update-golden to write)");
    bool drift = false;
    for (const GoldenInstance& inst : golden_instances()) {
        const GoldenRecord got = measure_golden(inst);
        GoldenRecord old;
        const bool had = read_golden(inst, old);
        if (had) {
            const bool changed = golden_drifted(got, old);
            drift |= changed;
            std::printf("%-12s wl %12.3f -> %12.3f  skew %7.3f -> %7.3f  bufs %4d -> %4d%s\n",
                        inst.name, old.wirelength_um, got.wirelength_um, old.skew_ps,
                        got.skew_ps, old.buffers, got.buffers,
                        changed ? "  [DRIFT]" : "");
        } else {
            drift = true;
            std::printf("%-12s NEW: wl %.3f skew %.3f bufs %d nodes %d\n", inst.name,
                        got.wirelength_um, got.skew_ps, got.buffers, got.tree_nodes);
        }
        if (write && !write_golden(inst, got)) {
            std::fprintf(stderr, "cannot write %s\n", golden_path(inst).c_str());
            return 2;
        }
    }
    if (write) {
        std::printf("snapshots written.\n");
        return 0;
    }
    return drift ? 1 : 0;
}
