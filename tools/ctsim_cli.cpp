// ctsim command-line interface.
//
// Synthesize a buffered clock tree for a benchmark file or a built-in
// synthetic instance, verify it with the transient simulator, and
// optionally export the SPICE deck.
//
//   ctsim_cli --bench r3                      # synthetic instance
//   ctsim_cli --gsrc r1.bst --slew 80         # real GSRC BST file
//   ctsim_cli --ispd f11.cns --hstructure correct --spice out.sp
//
// Exit status (docs/robustness.md):
//   0  verified tree within the slew limit
//   1  tree synthesized but the verified worst slew exceeds the limit
//   2  usage error (bad flag, missing file, unknown benchmark)
//   3  invalid input (malformed benchmark file, bad sink list)
//   4  infeasible routing instance
//   5  delay-library cache corruption (only if re-characterization
//      also failed; a corrupt cache normally just triggers a warning)
//   6  resource exhaustion
//   7  deadline exceeded with no usable result
//  10  internal error
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "bench_io/parsers.h"
#include "bench_io/synthetic.h"
#include "circuit/spice_writer.h"
#include "cts/checkpoint.h"
#include "cts/scenario.h"
#include "cts/synthesizer.h"
#include "delaylib/fitted_library.h"
#include "sim/netlist_sim.h"
#include "util/status.h"

namespace {

void usage() {
    std::printf(
        "usage: ctsim_cli [input] [options]\n"
        "input (one of):\n"
        "  --bench NAME        built-in synthetic instance (r1..r5, f11..fnb1)\n"
        "  --gsrc FILE         GSRC Bookshelf BST sink list\n"
        "  --ispd FILE         ISPD 2009 CNS benchmark\n"
        "options:\n"
        "  --slew-limit PS     hard slew limit (default 100)\n"
        "  --slew PS           synthesis slew target (default 80)\n"
        "  --grid N            routing grid cells per dimension (default 45)\n"
        "  --hstructure MODE   off | reestimate | correct (default off)\n"
        "  --seed-policy P     max-latency | random (default max-latency)\n"
        "  --matching P        greedy | path-growing (default greedy)\n"
        "  --deadline-ms MS    cooperative synthesis deadline; on expiry the\n"
        "                      run degrades gracefully (docs/robustness.md)\n"
        "  --memory-budget-mb MB  soft memory cap; under pressure the run\n"
        "                      degrades along the documented ladder before it\n"
        "                      ever fails (docs/robustness.md)\n"
        "  --checkpoint-dir DIR  crash-safe checkpointing: snapshots at phase\n"
        "                      boundaries, and a rerun with the same input and\n"
        "                      options resumes from the last one, skipping the\n"
        "                      completed phases (cleared on success)\n"
        "  --library FILE      delay library cache (default ctsim_delaylib_45nm.cache)\n"
        "  --cache-dir DIR     directory for relative cache files (also honors the\n"
        "                      CTSIM_CACHE_DIR environment variable; without either,\n"
        "                      the cache lands in the per-user cache directory --\n"
        "                      $XDG_CACHE_HOME/ctsim or ~/.cache/ctsim -- never the\n"
        "                      current directory)\n"
        "  --spice FILE        export the verified netlist as a SPICE deck\n"
        "  --quiet             only print the summary line\n"
        "scenario analysis (docs/scenarios.md; replaces the verify/SPICE path):\n"
        "  --scenario MODE     nominal | corners | monte_carlo | pareto_sweep\n"
        "  --samples N         monte_carlo sample count (default 64)\n"
        "  --scenario-seed K   variation seed (default 1); same seed, same curve\n"
        "  --wire-r-pct P      wire resistance variation half-range %% (default 5)\n"
        "  --wire-c-pct P      wire capacitance variation half-range %% (default 5)\n"
        "  --buffer-drive-pct P  buffer drive variation half-range %% (default 5)\n"
        "  --yield-target-ps PS  skew target for the reported yield (default 10)\n"
        "  --pareto-tols A,B,..  reclaim tolerances swept by pareto_sweep\n"
        "  --scenario-threads N  sample fan-out threads (0 = hardware; default 1)\n");
}

/// Map a structured error to its documented exit status.
int exit_code_for(ctsim::util::StatusCode c) {
    using ctsim::util::StatusCode;
    switch (c) {
        case StatusCode::ok: return 0;
        case StatusCode::invalid_input: return 3;
        case StatusCode::infeasible_route: return 4;
        case StatusCode::cache_corruption: return 5;
        case StatusCode::resource_exhaustion: return 6;
        case StatusCode::deadline_exceeded: return 7;
        case StatusCode::internal: return 10;
    }
    return 10;
}

[[noreturn]] void die(const ctsim::util::Error& e) {
    std::fprintf(stderr, "ctsim_cli: error: %s\n", e.status().to_string().c_str());
    std::exit(exit_code_for(e.status().code()));
}

}  // namespace

int main(int argc, char** argv) {
    using namespace ctsim;
    std::string bench_name, gsrc_file, ispd_file, spice_file, checkpoint_dir;
    std::string library_path = "ctsim_delaylib_45nm.cache";
    cts::SynthesisOptions opt;
    bool quiet = false;
    std::string scenario_mode;
    cts::ScenarioSpec scenario;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--bench") bench_name = next();
        else if (a == "--gsrc") gsrc_file = next();
        else if (a == "--ispd") ispd_file = next();
        else if (a == "--slew-limit") opt.slew_limit_ps = std::atof(next());
        else if (a == "--slew") opt.slew_target_ps = std::atof(next());
        else if (a == "--grid") opt.grid_cells_per_dim = std::atoi(next());
        else if (a == "--deadline-ms") opt.deadline_ms = std::atof(next());
        else if (a == "--memory-budget-mb") opt.memory_budget_mb = std::atof(next());
        else if (a == "--checkpoint-dir") checkpoint_dir = next();
        else if (a == "--library") library_path = next();
        else if (a == "--cache-dir") setenv("CTSIM_CACHE_DIR", next(), 1);
        else if (a == "--spice") spice_file = next();
        else if (a == "--quiet") quiet = true;
        else if (a == "--scenario") scenario_mode = next();
        else if (a == "--samples") scenario.samples = std::atoi(next());
        else if (a == "--scenario-seed")
            scenario.variation.seed = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (a == "--wire-r-pct") scenario.variation.wire_r_pct = std::atof(next());
        else if (a == "--wire-c-pct") scenario.variation.wire_c_pct = std::atof(next());
        else if (a == "--buffer-drive-pct")
            scenario.variation.buffer_drive_pct = std::atof(next());
        else if (a == "--yield-target-ps") scenario.skew_target_ps = std::atof(next());
        else if (a == "--scenario-threads") scenario.num_threads = std::atoi(next());
        else if (a == "--pareto-tols") {
            scenario.pareto_tols.clear();
            const std::string list = next();
            std::size_t pos = 0;
            while (pos <= list.size()) {
                const std::size_t comma = list.find(',', pos);
                const std::string tok =
                    list.substr(pos, comma == std::string::npos ? comma : comma - pos);
                if (!tok.empty()) scenario.pareto_tols.push_back(std::atof(tok.c_str()));
                if (comma == std::string::npos) break;
                pos = comma + 1;
            }
        }
        else if (a == "--hstructure") {
            const std::string m = next();
            if (m == "off") opt.hstructure = cts::HStructureMode::off;
            else if (m == "reestimate") opt.hstructure = cts::HStructureMode::reestimate;
            else if (m == "correct") opt.hstructure = cts::HStructureMode::correct;
            else {
                std::fprintf(stderr, "unknown hstructure mode '%s'\n", m.c_str());
                return 2;
            }
        } else if (a == "--seed-policy") {
            const std::string p = next();
            opt.seed_policy = p == "random" ? cts::SeedPolicy::random
                                            : cts::SeedPolicy::max_latency;
        } else if (a == "--matching") {
            const std::string p = next();
            opt.matching = p == "path-growing" ? cts::MatchingPolicy::path_growing
                                               : cts::MatchingPolicy::greedy_centroid;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage();
            return 2;
        }
    }

    std::vector<cts::SinkSpec> sinks;
    std::string label;
    try {
        if (!bench_name.empty()) {
            const auto spec = bench_io::find_benchmark(bench_name);
            if (!spec) {
                std::fprintf(stderr, "unknown benchmark '%s'\n", bench_name.c_str());
                return 2;
            }
            sinks = bench_io::generate(*spec);
            label = bench_name;
        } else if (!gsrc_file.empty()) {
            std::ifstream in(gsrc_file);
            if (!in) {
                std::fprintf(stderr, "cannot open %s\n", gsrc_file.c_str());
                return 2;
            }
            sinks = bench_io::parse_gsrc_bst(in, gsrc_file);
            label = gsrc_file;
        } else if (!ispd_file.empty()) {
            std::ifstream in(ispd_file);
            if (!in) {
                std::fprintf(stderr, "cannot open %s\n", ispd_file.c_str());
                return 2;
            }
            sinks = bench_io::parse_ispd09(in, ispd_file);
            label = ispd_file;
        } else {
            usage();
            return 2;
        }
    } catch (const util::Error& e) {
        die(e);
    }

    const tech::Technology tk = tech::Technology::ptm45_aggressive();
    const tech::BufferLibrary lib = tech::BufferLibrary::standard_three(tk);
    util::Status cache_status;
    std::unique_ptr<delaylib::FittedLibrary> model;
    try {
        model = delaylib::FittedLibrary::load_or_characterize(library_path, tk, lib, {},
                                                              &cache_status);
    } catch (const util::Error& e) {
        die(e);
    }
    if (!cache_status.ok())
        std::fprintf(stderr, "ctsim_cli: warning: delay-library cache rejected (%s); "
                             "re-characterized and rewrote it\n",
                     cache_status.to_string().c_str());

    if (!quiet)
        std::printf("%s: %zu sinks, slew target %.0f ps (limit %.0f ps)\n", label.c_str(),
                    sinks.size(), opt.slew_target_ps, opt.slew_limit_ps);

    if (!scenario_mode.empty()) {
        if (scenario_mode == "nominal") scenario.mode = cts::ScenarioMode::nominal;
        else if (scenario_mode == "corners") scenario.mode = cts::ScenarioMode::corners;
        else if (scenario_mode == "monte_carlo")
            scenario.mode = cts::ScenarioMode::monte_carlo;
        else if (scenario_mode == "pareto_sweep")
            scenario.mode = cts::ScenarioMode::pareto_sweep;
        else {
            std::fprintf(stderr, "unknown scenario mode '%s'\n", scenario_mode.c_str());
            return 2;
        }
        cts::ScenarioResult sr;
        try {
            sr = cts::run_scenario(sinks, *model, opt, scenario);
        } catch (const util::Error& e) {
            die(e);
        }
        if (!quiet) {
            std::printf("scenario %s: seed %u, %zu samples\n",
                        cts::scenario_mode_name(sr.mode), scenario.variation.seed,
                        sr.samples.size());
            std::printf("nominal: skew=%.3fps latency=%.3fps wire=%.2fmm "
                        "buffers=%d levels=%d\n",
                        sr.nominal_skew_ps, sr.nominal_latency_ps,
                        sr.nominal_wirelength_um / 1000.0, sr.buffers, sr.levels);
        }
        if (!sr.yield_curve_skew_ps.empty()) {
            const std::vector<double>& c = sr.yield_curve_skew_ps;
            const auto at = [&](double q) {
                std::size_t i = static_cast<std::size_t>(q * static_cast<double>(c.size()));
                return c[std::min(i, c.size() - 1)];
            };
            std::printf("skew quantiles: p50=%.3fps p90=%.3fps p100=%.3fps\n", at(0.50),
                        at(0.90), c.back());
        }
        for (const cts::ParetoPoint& p : sr.pareto)
            std::printf("pareto tol=%.2fps skew=%.3fps wire=%.2fmm%s\n", p.reclaim_tol_ps,
                        p.skew_ps, p.wirelength_um / 1000.0,
                        p.on_frontier ? " [frontier]" : " (dominated)");
        std::printf("%s: yield(skew<=%.1fps)=%.4f over %zu sample%s\n", label.c_str(),
                    scenario.skew_target_ps, sr.yield_at_target,
                    std::max<std::size_t>(sr.samples.size(), 1),
                    sr.samples.size() == 1 ? "" : "s");
        return 0;
    }

    std::unique_ptr<cts::Checkpointer> checkpoint;
    if (!checkpoint_dir.empty()) {
        checkpoint = std::make_unique<cts::Checkpointer>(checkpoint_dir);
        opt.checkpoint = checkpoint.get();
    }

    cts::SynthesisResult result;
    try {
        result = cts::synthesize(sinks, *model, opt);
    } catch (const util::Error& e) {
        die(e);
    }
    const cts::SynthesisDiagnostics& diag = result.diagnostics;
    if (diag.resumed_from != cts::CheckpointPhase::none && !quiet)
        std::printf("resumed from %s checkpoint (%s)\n",
                    cts::checkpoint_phase_name(diag.resumed_from),
                    checkpoint->path().c_str());
    if (!quiet)
        std::printf("tree: %d levels, %d buffers, %.2f mm wire, %d h-flips\n", result.levels,
                    result.buffer_count, result.wire_length_um / 1000.0,
                    result.hstats.flips);
    if (diag.c2f_fallbacks > 0)
        std::fprintf(stderr,
                     "ctsim_cli: warning: %d coarse-to-fine route%s fell back to the "
                     "full grid (first at merge node %d)\n",
                     diag.c2f_fallbacks, diag.c2f_fallbacks == 1 ? "" : "s",
                     diag.first_c2f_fallback_merge);
    if (diag.deadline_hit)
        std::fprintf(stderr,
                     "ctsim_cli: warning: deadline hit during %s; result degraded "
                     "(%d early-closed routes, refine %s, reclaim %s)\n",
                     cts::degrade_stage_name(diag.degraded_at), diag.degraded_routes,
                     diag.refine_skipped ? "skipped" : "ran",
                     diag.reclaim_skipped ? "skipped" : "ran");
    if (diag.memory_rung != cts::MemoryRung::none)
        std::fprintf(stderr,
                     "ctsim_cli: warning: memory budget pressure; degraded to rung "
                     "'%s' (peak %.1f MB of %.1f MB budget, %d coarsened route%s)\n",
                     cts::memory_rung_name(diag.memory_rung),
                     static_cast<double>(diag.memory_peak_bytes) / (1024.0 * 1024.0),
                     opt.memory_budget_mb, diag.grid_coarsened_routes,
                     diag.grid_coarsened_routes == 1 ? "" : "s");

    // A finished run must never be resumed: clear the snapshot now
    // that the tree is in hand (the checkpoint exists to survive a
    // crash or cut BEFORE this point).
    if (checkpoint != nullptr) checkpoint->clear();

    const circuit::Netlist net = result.netlist(tk, lib);
    const sim::NetlistSimReport rep = sim::simulate_netlist(net, tk, lib);

    std::printf("%s: worst_slew=%.1fps skew=%.2fps latency=%.3fns %s%s\n", label.c_str(),
                rep.worst_slew_ps, rep.skew_ps, rep.max_latency_ps / 1000.0,
                rep.worst_slew_ps <= opt.slew_limit_ps ? "PASS" : "SLEW-VIOLATION",
                diag.deadline_hit ? " (degraded)" : "");

    if (!spice_file.empty()) {
        std::ofstream deck(spice_file);
        circuit::write_spice(deck, net, tk, lib);
        if (!quiet) std::printf("wrote %s\n", spice_file.c_str());
    }
    return rep.worst_slew_ps <= opt.slew_limit_ps ? 0 : 1;
}
