// ctsim command-line interface.
//
// Synthesize a buffered clock tree for a benchmark file or a built-in
// synthetic instance, verify it with the transient simulator, and
// optionally export the SPICE deck.
//
//   ctsim_cli --bench r3                      # synthetic instance
//   ctsim_cli --gsrc r1.bst --slew 80         # real GSRC BST file
//   ctsim_cli --ispd f11.cns --hstructure correct --spice out.sp
//
// Exit status is nonzero when the verified worst slew exceeds the
// limit, so the tool can gate a flow.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_io/parsers.h"
#include "bench_io/synthetic.h"
#include "circuit/spice_writer.h"
#include "cts/synthesizer.h"
#include "delaylib/fitted_library.h"
#include "sim/netlist_sim.h"

namespace {

void usage() {
    std::printf(
        "usage: ctsim_cli [input] [options]\n"
        "input (one of):\n"
        "  --bench NAME        built-in synthetic instance (r1..r5, f11..fnb1)\n"
        "  --gsrc FILE         GSRC Bookshelf BST sink list\n"
        "  --ispd FILE         ISPD 2009 CNS benchmark\n"
        "options:\n"
        "  --slew-limit PS     hard slew limit (default 100)\n"
        "  --slew PS           synthesis slew target (default 80)\n"
        "  --grid N            routing grid cells per dimension (default 45)\n"
        "  --hstructure MODE   off | reestimate | correct (default off)\n"
        "  --seed-policy P     max-latency | random (default max-latency)\n"
        "  --matching P        greedy | path-growing (default greedy)\n"
        "  --library FILE      delay library cache (default ctsim_delaylib_45nm.cache)\n"
        "  --cache-dir DIR     directory for relative cache files (also honors the\n"
        "                      CTSIM_CACHE_DIR environment variable; without either,\n"
        "                      the cache lands in the current directory)\n"
        "  --spice FILE        export the verified netlist as a SPICE deck\n"
        "  --quiet             only print the summary line\n");
}

}  // namespace

int main(int argc, char** argv) {
    using namespace ctsim;
    std::string bench_name, gsrc_file, ispd_file, spice_file;
    std::string library_path = "ctsim_delaylib_45nm.cache";
    cts::SynthesisOptions opt;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--bench") bench_name = next();
        else if (a == "--gsrc") gsrc_file = next();
        else if (a == "--ispd") ispd_file = next();
        else if (a == "--slew-limit") opt.slew_limit_ps = std::atof(next());
        else if (a == "--slew") opt.slew_target_ps = std::atof(next());
        else if (a == "--grid") opt.grid_cells_per_dim = std::atoi(next());
        else if (a == "--library") library_path = next();
        else if (a == "--cache-dir") setenv("CTSIM_CACHE_DIR", next(), 1);
        else if (a == "--spice") spice_file = next();
        else if (a == "--quiet") quiet = true;
        else if (a == "--hstructure") {
            const std::string m = next();
            if (m == "off") opt.hstructure = cts::HStructureMode::off;
            else if (m == "reestimate") opt.hstructure = cts::HStructureMode::reestimate;
            else if (m == "correct") opt.hstructure = cts::HStructureMode::correct;
            else {
                std::fprintf(stderr, "unknown hstructure mode '%s'\n", m.c_str());
                return 2;
            }
        } else if (a == "--seed-policy") {
            const std::string p = next();
            opt.seed_policy = p == "random" ? cts::SeedPolicy::random
                                            : cts::SeedPolicy::max_latency;
        } else if (a == "--matching") {
            const std::string p = next();
            opt.matching = p == "path-growing" ? cts::MatchingPolicy::path_growing
                                               : cts::MatchingPolicy::greedy_centroid;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage();
            return 2;
        }
    }

    std::vector<cts::SinkSpec> sinks;
    std::string label;
    if (!bench_name.empty()) {
        const auto spec = bench_io::find_benchmark(bench_name);
        if (!spec) {
            std::fprintf(stderr, "unknown benchmark '%s'\n", bench_name.c_str());
            return 2;
        }
        sinks = bench_io::generate(*spec);
        label = bench_name;
    } else if (!gsrc_file.empty()) {
        std::ifstream in(gsrc_file);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", gsrc_file.c_str());
            return 2;
        }
        sinks = bench_io::parse_gsrc_bst(in);
        label = gsrc_file;
    } else if (!ispd_file.empty()) {
        std::ifstream in(ispd_file);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", ispd_file.c_str());
            return 2;
        }
        sinks = bench_io::parse_ispd09(in);
        label = ispd_file;
    } else {
        usage();
        return 2;
    }

    const tech::Technology tk = tech::Technology::ptm45_aggressive();
    const tech::BufferLibrary lib = tech::BufferLibrary::standard_three(tk);
    const auto model = delaylib::FittedLibrary::load_or_characterize(library_path, tk, lib, {});

    if (!quiet)
        std::printf("%s: %zu sinks, slew target %.0f ps (limit %.0f ps)\n", label.c_str(),
                    sinks.size(), opt.slew_target_ps, opt.slew_limit_ps);

    const cts::SynthesisResult result = cts::synthesize(sinks, *model, opt);
    if (!quiet)
        std::printf("tree: %d levels, %d buffers, %.2f mm wire, %d h-flips\n", result.levels,
                    result.buffer_count, result.wire_length_um / 1000.0,
                    result.hstats.flips);

    const circuit::Netlist net = result.netlist(tk, lib);
    const sim::NetlistSimReport rep = sim::simulate_netlist(net, tk, lib);

    std::printf("%s: worst_slew=%.1fps skew=%.2fps latency=%.3fns %s\n", label.c_str(),
                rep.worst_slew_ps, rep.skew_ps, rep.max_latency_ps / 1000.0,
                rep.worst_slew_ps <= opt.slew_limit_ps ? "PASS" : "SLEW-VIOLATION");

    if (!spice_file.empty()) {
        std::ofstream deck(spice_file);
        circuit::write_spice(deck, net, tk, lib);
        if (!quiet) std::printf("wrote %s\n", spice_file.c_str());
    }
    return rep.worst_slew_ps <= opt.slew_limit_ps ? 0 : 1;
}
