// ctsimd: long-lived multi-tenant synthesis daemon (docs/serving.md).
//
// Reads JSON-lines synthesis requests from stdin (default) or a
// unix-domain socket and serves them concurrently off one shared
// worker pool with admission control; one response line per request,
// in completion order (correlate by "id").
//
//   echo '{"id":1,"bench":"r1"}' | ctsimd --workers 2
//   ctsimd --socket /tmp/ctsim.sock --workers 0 &
//
// Exit status: 0 clean shutdown (EOF or a "shutdown" request),
// 2 usage error, 6 socket setup failure.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "delaylib/characterizer.h"
#include "serve/session.h"

namespace {

void usage() {
    std::printf(
        "usage: ctsimd [options]\n"
        "transport (one of):\n"
        "  (default)           read requests from stdin, respond on stdout\n"
        "  --socket PATH       listen on a unix-domain socket; each connection\n"
        "                      is a JSON-lines request stream\n"
        "options:\n"
        "  --workers N         worker threads (0 = one per hardware thread;\n"
        "                      default 1)\n"
        "  --queue N           admission queue depth; a full queue REJECTS with\n"
        "                      a typed resource_exhaustion error (default 64)\n"
        "  --memory-budget-mb MB  server-wide admission budget; 0 = unlimited\n"
        "                      (default 0)\n"
        "  --request-token-mb MB  admission charge per in-flight request\n"
        "                      (default 64)\n"
        "  --library FILE      delay library cache (default\n"
        "                      ctsim_delaylib_45nm.cache)\n"
        "  --cache-dir DIR     directory for relative cache files (also honors\n"
        "                      CTSIM_CACHE_DIR; without either a per-user cache\n"
        "                      directory is used -- never the CWD)\n"
        "  --fit-quick         characterize on the quick sweep grid (fast\n"
        "                      startup for smokes and sanitizer runs; lower\n"
        "                      fit fidelity than the default grid)\n"
        "protocol: one JSON object per line; see docs/serving.md.\n");
}

/// Owns one connection fd. The reader thread and every in-flight
/// job's emit lambda share it, so the fd closes only after the last
/// response for this tenant is written -- never while a queued job
/// could emit into a recycled fd number serving a different tenant.
class Conn {
  public:
    explicit Conn(int fd) : fd_(fd) {}
    ~Conn() { ::close(fd_); }
    Conn(const Conn&) = delete;
    Conn& operator=(const Conn&) = delete;

    int fd() const { return fd_; }

    /// Write the whole buffer, retrying EINTR and short writes so a
    /// large response can't truncate mid-line and corrupt the
    /// JSON-lines framing. MSG_NOSIGNAL: a client that hung up costs
    /// an EPIPE (it loses its responses, nobody else's), not a
    /// SIGPIPE that would kill every tenant.
    void write_all(const char* data, std::size_t n) const {
        while (n > 0) {
            const ssize_t w = ::send(fd_, data, n, MSG_NOSIGNAL);
            if (w < 0) {
                if (errno == EINTR) continue;
                return;
            }
            data += w;
            n -= static_cast<std::size_t>(w);
        }
    }

  private:
    int fd_;
};

/// Serve one JSON-lines stream from `in`, emitting through `emit`.
/// Returns false when a shutdown request ended the session.
bool serve_stream(ctsim::serve::ServeSession& session, std::FILE* in,
                  const ctsim::serve::ServeSession::Emit& emit) {
    std::string line;
    int c;
    while ((c = std::fgetc(in)) != EOF) {
        if (c == '\n') {
            if (!session.handle_line(line, emit)) return false;
            line.clear();
        } else {
            line.push_back(static_cast<char>(c));
        }
    }
    if (!line.empty() && !session.handle_line(line, emit)) return false;
    return true;
}

int serve_socket(ctsim::serve::ServeSession& session, const std::string& path) {
    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        std::perror("ctsimd: socket");
        return 6;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "ctsimd: socket path too long: %s\n", path.c_str());
        ::close(listener);
        return 2;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());  // stale socket from a previous run
    if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(listener, 16) < 0) {
        std::perror("ctsimd: bind/listen");
        ::close(listener);
        return 6;
    }
    std::fprintf(stderr, "ctsimd: listening on %s\n", path.c_str());

    // One reader thread per connection; they all feed the ONE shared
    // session (pool, budget, stats). A shutdown request on any
    // connection stops the accept loop AND shuts down the read side
    // of every open connection so readers blocked in fgetc() see EOF
    // and the join loop below actually finishes.
    std::vector<std::thread> readers;
    std::atomic<bool> shutting_down{false};
    std::mutex conns_mu;
    std::vector<std::weak_ptr<Conn>> conns;
    while (!shutting_down.load(std::memory_order_relaxed)) {
        const int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0) break;
        auto conn = std::make_shared<Conn>(fd);
        {
            std::lock_guard<std::mutex> lock(conns_mu);
            // Raced with a shutdown that already swept the registry:
            // cut this one off too instead of serving it forever.
            if (shutting_down.load(std::memory_order_relaxed))
                ::shutdown(conn->fd(), SHUT_RD);
            conns.erase(std::remove_if(conns.begin(), conns.end(),
                                       [](const std::weak_ptr<Conn>& w) {
                                           return w.expired();
                                       }),
                        conns.end());
            conns.push_back(conn);
        }
        readers.emplace_back([&session, &shutting_down, &conns_mu, &conns, conn,
                              listener] {
            // Read through a dup'd descriptor: fclose() below releases
            // only the reader's reference, while `conn` keeps the
            // socket open until the last in-flight job has emitted.
            const int rd = ::dup(conn->fd());
            std::FILE* in = rd >= 0 ? ::fdopen(rd, "r") : nullptr;
            if (in == nullptr) {
                if (rd >= 0) ::close(rd);
                return;
            }
            const auto emit = [conn](const std::string& line) {
                std::string out = line;
                out.push_back('\n');
                conn->write_all(out.data(), out.size());
            };
            if (!serve_stream(session, in, emit)) {
                shutting_down.store(true, std::memory_order_relaxed);
                ::shutdown(listener, SHUT_RDWR);  // unblock accept()
                std::lock_guard<std::mutex> lock(conns_mu);
                for (const std::weak_ptr<Conn>& w : conns)
                    if (const std::shared_ptr<Conn> c = w.lock())
                        ::shutdown(c->fd(), SHUT_RD);
            }
            std::fclose(in);
        });
    }
    for (std::thread& t : readers) t.join();
    ::close(listener);
    ::unlink(path.c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace ctsim;
    // A client that disconnects mid-response must cost a failed write,
    // not a SIGPIPE that terminates every tenant's daemon.
    std::signal(SIGPIPE, SIG_IGN);
    serve::ServeSession::Config cfg;
    std::string socket_path;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--workers") cfg.workers = std::atoi(next());
        else if (a == "--queue") cfg.queue_capacity = std::atoi(next());
        else if (a == "--memory-budget-mb") cfg.memory_budget_mb = std::atof(next());
        else if (a == "--request-token-mb") cfg.request_token_mb = std::atof(next());
        else if (a == "--library") cfg.library_path = next();
        else if (a == "--cache-dir") setenv("CTSIM_CACHE_DIR", next(), 1);
        else if (a == "--fit-quick") {
            cfg.fit.grid = delaylib::SweepGrid::quick();
            cfg.fit.single_degree = 3;
            cfg.fit.branch_degree = 2;
            if (cfg.library_path == "ctsim_delaylib_45nm.cache")
                cfg.library_path = "ctsim_delaylib_quick.cache";
        } else if (a == "--socket") socket_path = next();
        else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", a.c_str());
            usage();
            return 2;
        }
    }
    if (cfg.workers < 0 || cfg.queue_capacity < 1) {
        std::fprintf(stderr, "ctsimd: --workers must be >= 0, --queue >= 1\n");
        return 2;
    }

    serve::ServeSession session(cfg);
    std::fprintf(stderr, "ctsimd: serving with %d worker(s), queue %d\n",
                 session.workers(), cfg.queue_capacity);

    if (!socket_path.empty()) return serve_socket(session, socket_path);

    const auto emit = [](const std::string& line) {
        std::fputs(line.c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);  // clients pipeline; don't sit on responses
    };
    serve_stream(session, stdin, emit);
    session.drain();
    return 0;
}
