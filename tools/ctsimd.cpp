// ctsimd: long-lived multi-tenant synthesis daemon (docs/serving.md).
//
// Reads JSON-lines synthesis requests from stdin (default) or a
// unix-domain socket and serves them concurrently off one shared
// worker pool with admission control; one response line per request,
// in completion order (correlate by "id").
//
//   echo '{"id":1,"bench":"r1"}' | ctsimd --workers 2
//   ctsimd --socket /tmp/ctsim.sock --workers 0 &
//
// Exit status: 0 clean shutdown (EOF or a "shutdown" request),
// 2 usage error, 6 socket setup failure.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "delaylib/characterizer.h"
#include "serve/session.h"

namespace {

void usage() {
    std::printf(
        "usage: ctsimd [options]\n"
        "transport (one of):\n"
        "  (default)           read requests from stdin, respond on stdout\n"
        "  --socket PATH       listen on a unix-domain socket; each connection\n"
        "                      is a JSON-lines request stream\n"
        "options:\n"
        "  --workers N         worker threads (0 = one per hardware thread;\n"
        "                      default 1)\n"
        "  --queue N           admission queue depth; a full queue REJECTS with\n"
        "                      a typed resource_exhaustion error (default 64)\n"
        "  --memory-budget-mb MB  server-wide admission budget; 0 = unlimited\n"
        "                      (default 0)\n"
        "  --request-token-mb MB  admission charge per in-flight request\n"
        "                      (default 64)\n"
        "  --library FILE      delay library cache (default\n"
        "                      ctsim_delaylib_45nm.cache)\n"
        "  --cache-dir DIR     directory for relative cache files (also honors\n"
        "                      CTSIM_CACHE_DIR; without either a per-user cache\n"
        "                      directory is used -- never the CWD)\n"
        "  --fit-quick         characterize on the quick sweep grid (fast\n"
        "                      startup for smokes and sanitizer runs; lower\n"
        "                      fit fidelity than the default grid)\n"
        "protocol: one JSON object per line; see docs/serving.md.\n");
}

/// Serve one JSON-lines stream from `in`, emitting through `emit`.
/// Returns false when a shutdown request ended the session.
bool serve_stream(ctsim::serve::ServeSession& session, std::FILE* in,
                  const ctsim::serve::ServeSession::Emit& emit) {
    std::string line;
    int c;
    while ((c = std::fgetc(in)) != EOF) {
        if (c == '\n') {
            if (!session.handle_line(line, emit)) return false;
            line.clear();
        } else {
            line.push_back(static_cast<char>(c));
        }
    }
    if (!line.empty() && !session.handle_line(line, emit)) return false;
    return true;
}

int serve_socket(ctsim::serve::ServeSession& session, const std::string& path) {
    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        std::perror("ctsimd: socket");
        return 6;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "ctsimd: socket path too long: %s\n", path.c_str());
        ::close(listener);
        return 2;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());  // stale socket from a previous run
    if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(listener, 16) < 0) {
        std::perror("ctsimd: bind/listen");
        ::close(listener);
        return 6;
    }
    std::fprintf(stderr, "ctsimd: listening on %s\n", path.c_str());

    // One reader thread per connection; they all feed the ONE shared
    // session (pool, budget, stats). A shutdown request on any
    // connection stops the accept loop.
    std::vector<std::thread> readers;
    std::atomic<bool> shutting_down{false};
    while (!shutting_down.load(std::memory_order_relaxed)) {
        const int conn = ::accept(listener, nullptr, nullptr);
        if (conn < 0) break;
        readers.emplace_back([&session, &shutting_down, conn, listener] {
            std::FILE* in = ::fdopen(conn, "r");
            if (in == nullptr) {
                ::close(conn);
                return;
            }
            const auto emit = [conn](const std::string& line) {
                std::string out = line;
                out.push_back('\n');
                // Best effort: a client that hung up loses its
                // responses, nobody else's.
                (void)!::write(conn, out.data(), out.size());
            };
            if (!serve_stream(session, in, emit)) {
                shutting_down.store(true, std::memory_order_relaxed);
                ::shutdown(listener, SHUT_RDWR);  // unblock accept()
            }
            std::fclose(in);  // closes conn
        });
    }
    for (std::thread& t : readers) t.join();
    ::close(listener);
    ::unlink(path.c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace ctsim;
    serve::ServeSession::Config cfg;
    std::string socket_path;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--workers") cfg.workers = std::atoi(next());
        else if (a == "--queue") cfg.queue_capacity = std::atoi(next());
        else if (a == "--memory-budget-mb") cfg.memory_budget_mb = std::atof(next());
        else if (a == "--request-token-mb") cfg.request_token_mb = std::atof(next());
        else if (a == "--library") cfg.library_path = next();
        else if (a == "--cache-dir") setenv("CTSIM_CACHE_DIR", next(), 1);
        else if (a == "--fit-quick") {
            cfg.fit.grid = delaylib::SweepGrid::quick();
            cfg.fit.single_degree = 3;
            cfg.fit.branch_degree = 2;
            if (cfg.library_path == "ctsim_delaylib_45nm.cache")
                cfg.library_path = "ctsim_delaylib_quick.cache";
        } else if (a == "--socket") socket_path = next();
        else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", a.c_str());
            usage();
            return 2;
        }
    }
    if (cfg.workers < 0 || cfg.queue_capacity < 1) {
        std::fprintf(stderr, "ctsimd: --workers must be >= 0, --queue >= 1\n");
        return 2;
    }

    serve::ServeSession session(cfg);
    std::fprintf(stderr, "ctsimd: serving with %d worker(s), queue %d\n",
                 session.workers(), cfg.queue_capacity);

    if (!socket_path.empty()) return serve_socket(session, socket_path);

    const auto emit = [](const std::string& line) {
        std::fputs(line.c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);  // clients pipeline; don't sit on responses
    };
    serve_stream(session, stdin, emit);
    session.drain();
    return 0;
}
