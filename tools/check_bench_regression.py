#!/usr/bin/env python3
"""Perf-regression guard over BENCH_synth.json.

Compares a freshly produced BENCH_synth.json against the committed
baseline and fails (exit 1) when any instance regresses beyond the
thresholds:

  * wall-clock: > 15% on any mode's NORMALIZED time. Raw seconds are
    not comparable across machines (the committed baseline comes from
    a different box than the CI runner), so each mode's seconds are
    divided by the same instance's `seed` seconds first -- the seed
    mode is the fixed pre-overhaul algorithm and serves as the
    machine-speed yardstick.
  * wirelength: > 3% on any mode (solution quality; machine
    independent, so compared raw).
  * peak RSS: > 25% on an instance's `peak_rss_mb` high-water (the
    footprint is a property of the algorithm's working set, far less
    machine-sensitive than wall-clock). Baselines written before the
    column existed are tolerated: the missing column is flagged with a
    note and the check skipped, never counted as a pass.
  * refined skew: the refine* and reclaim* modes carry the top-down
    skew-refinement clamp (the reclaim modes additionally the
    engine-verified wirelength reclamation, whose batches are rolled
    back beyond a skew budget), and the whole point of both passes is
    a stable skew band; any instance whose skew in those modes
    exceeds the committed baseline's by more than SKEW_SLACK_PS fails
    (machine independent, compared raw; other modes stay ungated --
    their skews are decision-chaotic by design).

Instances or modes present in only one file are reported and skipped
(the guard must not block adding instances/modes). Per-instance
wall-clock checks apply only above MIN_SECONDS of baseline time --
below that the comparison measures timer noise, not the algorithm --
and every mode additionally gets an AGGREGATE check over the summed
normalized time of all its instances, which is noise-robust and
covers the fast instances the per-instance floor skips.

An optional second pair of arguments gates BENCH_serve.json (the
serving throughput harness):

  * a missing, empty or malformed serve BASELINE is flagged with a
    note and the serve gate skipped (baselines predate the harness;
    the guard must not block the PR that introduces it) -- but a
    missing/malformed FRESH serve file is a usage error: the harness
    was supposed to have just produced it;
  * the fresh run must report zero failed and zero rejected requests
    and all_identical=true (the burst is sized to never saturate, so
    any of these is a serving bug, not a perf question);
  * throughput is only compared worker-count against worker-count and
    NORMALIZED by the same run's 1-worker throughput (raw req/s is
    machine speed; the scaling shape is the algorithm). Worker counts
    present in only one file (different nproc) are skipped with a
    note.

An optional third pair of arguments gates BENCH_scenario.json (the
scenario analysis harness):

  * a missing, empty or malformed scenario BASELINE is flagged with a
    note and the trend gate skipped (baselines predate the harness),
    while a missing/malformed FRESH scenario file is a usage error;
  * the fresh run must report threads_identical=true (the yield curve
    is contractually bit-identical at any fan-out width) and an
    mc_cost_ratio below MC_COST_CEILING (synthesize-once + re-time
    must stay cheap relative to one synthesis -- the ratio is already
    machine-normalized, wall over wall on the same box);
  * yield_at_target must not drop below the baseline's (solution
    robustness; machine independent, compared raw);
  * sampling throughput is gated on mc_cost_ratio, not raw samples/s
    (raw samples/s is machine speed; the ratio to one synthesis is
    the algorithm), at the usual 15%. Fresh/baseline files from
    different instances or sample counts are skipped with a note.

usage: check_bench_regression.py <fresh.json> <baseline.json>
           [<serve_fresh.json> <serve_baseline.json>
            [<scenario_fresh.json> <scenario_baseline.json>]]
"""

import json
import sys

TIME_REGRESSION = 1.15
WIRELENGTH_REGRESSION = 1.03
MIN_SECONDS = 0.05
SKEW_SLACK_PS = 1.0
RSS_REGRESSION = 1.25


def by_name(doc):
    return {inst["name"]: inst for inst in doc.get("instances", [])}


def mode_keys(inst):
    return [k for k, v in inst.items() if isinstance(v, dict) and "seconds" in v]


SERVE_SCALING_REGRESSION = 1.15


def check_serve(fresh_path, base_path, failures):
    """Gate the serving harness pair. Returns checks performed, or a
    negative value for a usage error (malformed FRESH file)."""
    try:
        fresh = json.load(open(fresh_path))
        if not isinstance(fresh, dict):
            raise ValueError("top-level value is not an object")
    except (OSError, ValueError) as exc:
        # The fresh file is produced by the run being gated; its
        # absence or corruption is a harness failure, not a skip.
        print(f"error: cannot load fresh serve JSON: {exc}")
        return -1
    checked = 0

    # Correctness gates on the fresh run stand alone -- they need no
    # baseline, and they are the serving contract, not a perf trend.
    checked += 1
    for run in fresh.get("workers", []):
        if run.get("failed", 0) or run.get("rejected", 0):
            failures.append(
                f"serve/workers={run.get('workers')}: {run.get('failed', 0)} "
                f"failed, {run.get('rejected', 0)} rejected (burst is sized to "
                f"never saturate; a shared-pool serving bug)")
    if not fresh.get("all_identical", False):
        failures.append("serve: responses not bit-identical across worker counts")

    try:
        base = json.load(open(base_path))
        if not isinstance(base, dict) or not base.get("workers"):
            raise ValueError("no worker runs in baseline")
    except (OSError, ValueError) as exc:
        # Baselines committed before the serve harness existed (or an
        # intentionally empty placeholder) must not block the gate --
        # but the skip is flagged so it can be audited.
        print(f"note: serve baseline unusable ({exc}); scaling gate skipped")
        return checked

    def normalized(doc):
        runs = {r.get("workers"): r.get("requests_per_s", 0.0)
                for r in doc.get("workers", [])}
        one = runs.get(1, 0.0)
        if one <= 0:
            return {}
        return {w: rps / one for w, rps in runs.items() if w != 1 and rps > 0}

    fnorm, bnorm = normalized(fresh), normalized(base)
    for w in sorted(bnorm):
        if w not in fnorm:
            print(f"note: serve worker count {w} missing from fresh run "
                  f"(different nproc?), skipped")
            continue
        checked += 1
        if fnorm[w] < bnorm[w] / SERVE_SCALING_REGRESSION:
            failures.append(
                f"serve/workers={w}: scaling vs 1 worker {bnorm[w]:.2f}x -> "
                f"{fnorm[w]:.2f}x "
                f"(-{100.0 * (1.0 - fnorm[w] / bnorm[w]):.1f}% > "
                f"{100.0 * (SERVE_SCALING_REGRESSION - 1.0):.0f}%)")
    return checked


MC_COST_CEILING = 3.0
SCENARIO_COST_REGRESSION = 1.15


def check_scenario(fresh_path, base_path, failures):
    """Gate the scenario harness pair. Returns checks performed, or a
    negative value for a usage error (malformed FRESH file)."""
    try:
        fresh = json.load(open(fresh_path))
        if not isinstance(fresh, dict):
            raise ValueError("top-level value is not an object")
    except (OSError, ValueError) as exc:
        print(f"error: cannot load fresh scenario JSON: {exc}")
        return -1
    checked = 0

    # Correctness gates on the fresh run stand alone -- they are the
    # scenario contract (docs/scenarios.md), not a perf trend.
    checked += 1
    if not fresh.get("threads_identical", False):
        failures.append(
            "scenario: yield curve not bit-identical across fan-out widths")
    ratio = fresh.get("mc_cost_ratio")
    if ratio is None:
        print("warning: fresh scenario run missing mc_cost_ratio; "
              "cost-contract check skipped")
    else:
        checked += 1
        if ratio >= MC_COST_CEILING:
            failures.append(
                f"scenario: mc_cost_ratio {ratio:.2f}x >= {MC_COST_CEILING:.0f}x "
                f"(MC sampling must cost less than {MC_COST_CEILING:.0f} "
                f"nominal syntheses)")

    try:
        base = json.load(open(base_path))
        if not isinstance(base, dict) or "yield_at_target" not in base:
            raise ValueError("no scenario metrics in baseline")
    except (OSError, ValueError) as exc:
        print(f"note: scenario baseline unusable ({exc}); trend gate skipped")
        return checked

    if (fresh.get("instance") != base.get("instance")
            or fresh.get("samples") != base.get("samples")):
        print(f"note: scenario fresh/baseline not comparable "
              f"({fresh.get('instance')}/{fresh.get('samples')} vs "
              f"{base.get('instance')}/{base.get('samples')}; quick run?), "
              f"trend gate skipped")
        return checked

    fy, by = fresh.get("yield_at_target"), base.get("yield_at_target")
    if fy is None:
        print("warning: fresh scenario run missing yield_at_target; "
              "yield check skipped")
    else:
        checked += 1
        if fy < by:
            failures.append(
                f"scenario: yield(skew<=target) {by:.4f} -> {fy:.4f} "
                f"(robustness under variation regressed)")

    bratio = base.get("mc_cost_ratio")
    if ratio is not None and bratio is not None and bratio > 0:
        checked += 1
        if ratio > bratio * SCENARIO_COST_REGRESSION:
            failures.append(
                f"scenario: mc_cost_ratio {bratio:.2f}x -> {ratio:.2f}x "
                f"(+{100.0 * (ratio / bratio - 1.0):.1f}% > "
                f"{100.0 * (SCENARIO_COST_REGRESSION - 1.0):.0f}%)")
    return checked


def main():
    if len(sys.argv) not in (3, 5, 7):
        print(__doc__)
        return 2
    try:
        fresh = by_name(json.load(open(sys.argv[1])))
        base = by_name(json.load(open(sys.argv[2])))
    except (OSError, ValueError) as exc:
        # A malformed or missing input must fail loudly as a usage
        # error (exit 2), not masquerade as a pass/regression verdict.
        print(f"error: cannot load benchmark JSON: {exc}")
        return 2

    failures = []
    checked = 0
    if len(sys.argv) >= 5:
        serve_checked = check_serve(sys.argv[3], sys.argv[4], failures)
        if serve_checked < 0:
            return 2
        checked += serve_checked
    if len(sys.argv) == 7:
        scenario_checked = check_scenario(sys.argv[5], sys.argv[6], failures)
        if scenario_checked < 0:
            return 2
        checked += scenario_checked
    agg = {}  # mode -> [fresh_norm_sum, base_norm_sum]
    for name, b in base.items():
        f = fresh.get(name)
        if f is None:
            print(f"note: instance {name} missing from fresh run, skipped")
            continue
        fseed = f.get("seed", {}).get("seconds", 0.0)
        bseed = b.get("seed", {}).get("seconds", 0.0)

        # Peak-RSS gate. Old baselines predate the column: tolerate
        # them with a visible note (so the skip can be audited) and
        # without counting the skip as a passing check.
        frss, brss = f.get("peak_rss_mb"), b.get("peak_rss_mb")
        if brss is None:
            print(f"note: {name} baseline has no peak_rss_mb column "
                  f"(written before the RSS gate); RSS check skipped")
        elif frss is None:
            print(f"warning: {name} missing peak_rss_mb in fresh run; "
                  f"RSS check skipped")
        else:
            checked += 1
            if brss > 0 and frss > brss * RSS_REGRESSION:
                failures.append(
                    f"{name}: peak RSS {brss:.1f} -> {frss:.1f} MB "
                    f"(+{100.0 * (frss / brss - 1.0):.1f}% > "
                    f"{100.0 * (RSS_REGRESSION - 1.0):.0f}%)")
        for mode in mode_keys(b):
            if mode not in f:
                print(f"note: {name}/{mode} missing from fresh run, skipped")
                continue
            fm, bm = f[mode], b[mode]
            checked += 1

            # A degraded or interrupted harness run can emit a mode
            # record with columns missing (e.g. the reclaim stats when
            # the pass was cut short). Flag it loudly and skip the
            # affected metric instead of crashing the gate -- but never
            # count it as a passing comparison.
            fw, bw = fm.get("wirelength_um"), bm.get("wirelength_um")
            if fw is None or bw is None:
                side = "fresh" if fw is None else "baseline"
                print(f"warning: {name}/{mode} missing wirelength_um in {side} "
                      f"run; wirelength check skipped")
            elif bw > 0 and fw > bw * WIRELENGTH_REGRESSION:
                failures.append(
                    f"{name}/{mode}: wirelength {bw:.0f} -> {fw:.0f} um "
                    f"(+{100.0 * (fw / bw - 1.0):.1f}% > "
                    f"{100.0 * (WIRELENGTH_REGRESSION - 1.0):.0f}%)")

            if mode.startswith(("refine", "reclaim")):
                fs, bs = fm.get("skew_ps", 0.0), bm.get("skew_ps", 0.0)
                if fs > bs + SKEW_SLACK_PS:
                    failures.append(
                        f"{name}/{mode}: refined skew {bs:.2f} -> {fs:.2f} ps "
                        f"(> baseline + {SKEW_SLACK_PS:.0f} ps; the refinement "
                        f"clamp regressed)")

            if mode == "seed" or bseed <= 0 or fseed <= 0:
                continue  # seed IS the yardstick
            if "seconds" not in fm:
                print(f"warning: {name}/{mode} missing seconds in fresh run; "
                      f"wall-clock check skipped")
                continue
            fnorm = fm["seconds"] / fseed
            bnorm = bm["seconds"] / bseed
            a = agg.setdefault(mode, [0.0, 0.0])
            a[0] += fnorm
            a[1] += bnorm
            if bm["seconds"] < MIN_SECONDS:
                continue  # per-instance check floors out; aggregate still sees it
            if fnorm > bnorm * TIME_REGRESSION:
                failures.append(
                    f"{name}/{mode}: normalized wall-clock {bnorm:.3f} -> {fnorm:.3f} "
                    f"(x seed; +{100.0 * (fnorm / bnorm - 1.0):.1f}% > "
                    f"{100.0 * (TIME_REGRESSION - 1.0):.0f}%)")

    for mode, (fsum, bsum) in sorted(agg.items()):
        checked += 1
        if bsum > 0 and fsum > bsum * TIME_REGRESSION:
            failures.append(
                f"aggregate/{mode}: summed normalized wall-clock {bsum:.3f} -> "
                f"{fsum:.3f} (+{100.0 * (fsum / bsum - 1.0):.1f}% > "
                f"{100.0 * (TIME_REGRESSION - 1.0):.0f}%)")

    if failures:
        print(f"PERF REGRESSION ({len(failures)} failure(s) over {checked} checks):")
        for fmsg in failures:
            print("  " + fmsg)
        return 1
    if checked == 0:
        # A well-formed document with nothing comparable (interrupted
        # harness, renamed instances/modes) must not masquerade as a
        # green gate.
        print("error: no comparable instance/mode pairs between fresh and baseline")
        return 2
    print(f"perf guard OK: {checked} instance/mode checks within thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
