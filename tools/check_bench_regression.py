#!/usr/bin/env python3
"""Perf-regression guard over BENCH_synth.json.

Compares a freshly produced BENCH_synth.json against the committed
baseline and fails (exit 1) when any instance regresses beyond the
thresholds:

  * wall-clock: > 15% on any mode's NORMALIZED time. Raw seconds are
    not comparable across machines (the committed baseline comes from
    a different box than the CI runner), so each mode's seconds are
    divided by the same instance's `seed` seconds first -- the seed
    mode is the fixed pre-overhaul algorithm and serves as the
    machine-speed yardstick.
  * wirelength: > 3% on any mode (solution quality; machine
    independent, so compared raw).
  * peak RSS: > 25% on an instance's `peak_rss_mb` high-water (the
    footprint is a property of the algorithm's working set, far less
    machine-sensitive than wall-clock). Baselines written before the
    column existed are tolerated: the missing column is flagged with a
    note and the check skipped, never counted as a pass.
  * refined skew: the refine* and reclaim* modes carry the top-down
    skew-refinement clamp (the reclaim modes additionally the
    engine-verified wirelength reclamation, whose batches are rolled
    back beyond a skew budget), and the whole point of both passes is
    a stable skew band; any instance whose skew in those modes
    exceeds the committed baseline's by more than SKEW_SLACK_PS fails
    (machine independent, compared raw; other modes stay ungated --
    their skews are decision-chaotic by design).

Instances or modes present in only one file are reported and skipped
(the guard must not block adding instances/modes). Per-instance
wall-clock checks apply only above MIN_SECONDS of baseline time --
below that the comparison measures timer noise, not the algorithm --
and every mode additionally gets an AGGREGATE check over the summed
normalized time of all its instances, which is noise-robust and
covers the fast instances the per-instance floor skips.

usage: check_bench_regression.py <fresh.json> <baseline.json>
"""

import json
import sys

TIME_REGRESSION = 1.15
WIRELENGTH_REGRESSION = 1.03
MIN_SECONDS = 0.05
SKEW_SLACK_PS = 1.0
RSS_REGRESSION = 1.25


def by_name(doc):
    return {inst["name"]: inst for inst in doc.get("instances", [])}


def mode_keys(inst):
    return [k for k, v in inst.items() if isinstance(v, dict) and "seconds" in v]


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    try:
        fresh = by_name(json.load(open(sys.argv[1])))
        base = by_name(json.load(open(sys.argv[2])))
    except (OSError, ValueError) as exc:
        # A malformed or missing input must fail loudly as a usage
        # error (exit 2), not masquerade as a pass/regression verdict.
        print(f"error: cannot load benchmark JSON: {exc}")
        return 2

    failures = []
    checked = 0
    agg = {}  # mode -> [fresh_norm_sum, base_norm_sum]
    for name, b in base.items():
        f = fresh.get(name)
        if f is None:
            print(f"note: instance {name} missing from fresh run, skipped")
            continue
        fseed = f.get("seed", {}).get("seconds", 0.0)
        bseed = b.get("seed", {}).get("seconds", 0.0)

        # Peak-RSS gate. Old baselines predate the column: tolerate
        # them with a visible note (so the skip can be audited) and
        # without counting the skip as a passing check.
        frss, brss = f.get("peak_rss_mb"), b.get("peak_rss_mb")
        if brss is None:
            print(f"note: {name} baseline has no peak_rss_mb column "
                  f"(written before the RSS gate); RSS check skipped")
        elif frss is None:
            print(f"warning: {name} missing peak_rss_mb in fresh run; "
                  f"RSS check skipped")
        else:
            checked += 1
            if brss > 0 and frss > brss * RSS_REGRESSION:
                failures.append(
                    f"{name}: peak RSS {brss:.1f} -> {frss:.1f} MB "
                    f"(+{100.0 * (frss / brss - 1.0):.1f}% > "
                    f"{100.0 * (RSS_REGRESSION - 1.0):.0f}%)")
        for mode in mode_keys(b):
            if mode not in f:
                print(f"note: {name}/{mode} missing from fresh run, skipped")
                continue
            fm, bm = f[mode], b[mode]
            checked += 1

            # A degraded or interrupted harness run can emit a mode
            # record with columns missing (e.g. the reclaim stats when
            # the pass was cut short). Flag it loudly and skip the
            # affected metric instead of crashing the gate -- but never
            # count it as a passing comparison.
            fw, bw = fm.get("wirelength_um"), bm.get("wirelength_um")
            if fw is None or bw is None:
                side = "fresh" if fw is None else "baseline"
                print(f"warning: {name}/{mode} missing wirelength_um in {side} "
                      f"run; wirelength check skipped")
            elif bw > 0 and fw > bw * WIRELENGTH_REGRESSION:
                failures.append(
                    f"{name}/{mode}: wirelength {bw:.0f} -> {fw:.0f} um "
                    f"(+{100.0 * (fw / bw - 1.0):.1f}% > "
                    f"{100.0 * (WIRELENGTH_REGRESSION - 1.0):.0f}%)")

            if mode.startswith(("refine", "reclaim")):
                fs, bs = fm.get("skew_ps", 0.0), bm.get("skew_ps", 0.0)
                if fs > bs + SKEW_SLACK_PS:
                    failures.append(
                        f"{name}/{mode}: refined skew {bs:.2f} -> {fs:.2f} ps "
                        f"(> baseline + {SKEW_SLACK_PS:.0f} ps; the refinement "
                        f"clamp regressed)")

            if mode == "seed" or bseed <= 0 or fseed <= 0:
                continue  # seed IS the yardstick
            if "seconds" not in fm:
                print(f"warning: {name}/{mode} missing seconds in fresh run; "
                      f"wall-clock check skipped")
                continue
            fnorm = fm["seconds"] / fseed
            bnorm = bm["seconds"] / bseed
            a = agg.setdefault(mode, [0.0, 0.0])
            a[0] += fnorm
            a[1] += bnorm
            if bm["seconds"] < MIN_SECONDS:
                continue  # per-instance check floors out; aggregate still sees it
            if fnorm > bnorm * TIME_REGRESSION:
                failures.append(
                    f"{name}/{mode}: normalized wall-clock {bnorm:.3f} -> {fnorm:.3f} "
                    f"(x seed; +{100.0 * (fnorm / bnorm - 1.0):.1f}% > "
                    f"{100.0 * (TIME_REGRESSION - 1.0):.0f}%)")

    for mode, (fsum, bsum) in sorted(agg.items()):
        checked += 1
        if bsum > 0 and fsum > bsum * TIME_REGRESSION:
            failures.append(
                f"aggregate/{mode}: summed normalized wall-clock {bsum:.3f} -> "
                f"{fsum:.3f} (+{100.0 * (fsum / bsum - 1.0):.1f}% > "
                f"{100.0 * (TIME_REGRESSION - 1.0):.0f}%)")

    if failures:
        print(f"PERF REGRESSION ({len(failures)} failure(s) over {checked} checks):")
        for fmsg in failures:
            print("  " + fmsg)
        return 1
    if checked == 0:
        # A well-formed document with nothing comparable (interrupted
        # harness, renamed instances/modes) must not masquerade as a
        # green gate.
        print("error: no comparable instance/mode pairs between fresh and baseline")
        return 2
    print(f"perf guard OK: {checked} instance/mode checks within thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
